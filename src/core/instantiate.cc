#include "core/instantiate.h"

#include <functional>
#include <set>
#include <unordered_map>

#include "base/check.h"
#include "cq/query.h"

namespace qcont {
namespace internal {

int KindSpace::GetKind(const KindKey& key) {
  auto it = ids_.find(key);
  if (it != ids_.end()) return it->second;
  int id = static_cast<int>(keys_.size());
  ids_.emplace(key, id);
  keys_.push_back(key);
  rules_.emplace_back();
  instantiated_.push_back(false);
  pending_.push_back(id);
  InstantiatePending();
  return id;
}

void KindSpace::InstantiatePending() {
  while (!pending_.empty()) {
    int id = pending_.back();
    pending_.pop_back();
    if (instantiated_[id]) continue;
    instantiated_[id] = true;
    KindKey key = keys_[id];  // copy: vectors may grow below
    std::vector<InstRule> rules;
    for (int r : program_.RulesFor(key.pred)) {
      std::optional<InstRule> inst = Instantiate(r, key.pattern);
      if (inst.has_value()) rules.push_back(std::move(*inst));
    }
    rules_[id] = std::move(rules);
  }
}

std::optional<InstRule> KindSpace::Instantiate(int r,
                                               const std::vector<int>& pattern) {
  const Rule& rule = program_.rules()[r];
  std::vector<std::string> vars = rule.Variables();
  std::unordered_map<std::string, int> var_index;
  for (std::size_t i = 0; i < vars.size(); ++i) {
    var_index.emplace(vars[i], static_cast<int>(i));
  }
  std::vector<int> parent(vars.size());
  for (std::size_t i = 0; i < vars.size(); ++i) parent[i] = static_cast<int>(i);
  std::function<int(int)> find = [&](int x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  const std::vector<Term>& head = rule.head.terms();
  // The pattern can only merge variables; a rule whose head repeats a
  // variable across positions the pattern keeps distinct cannot produce
  // instances of this kind.
  for (std::size_t i = 0; i < head.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (head[i].name() == head[j].name() && pattern[i] != pattern[j]) {
        return std::nullopt;
      }
    }
  }
  for (std::size_t i = 0; i < head.size(); ++i) {
    int a = find(var_index.at(head[i].name()));
    int b = find(var_index.at(head[pattern[i]].name()));
    if (a != b) parent[a] = b;
  }
  InstRule inst;
  inst.rule_index = r;
  for (const Term& t : head) {
    inst.head.push_back(find(var_index.at(t.name())));
  }
  for (const Atom& atom : rule.body) {
    std::vector<int> terms;
    for (const Term& t : atom.terms()) {
      terms.push_back(find(var_index.at(t.name())));
    }
    if (program_.IsIntensional(atom.predicate())) {
      KindKey child_key{atom.predicate(), PatternOf(terms)};
      // Note: GetKind may be re-entered; the pending_ worklist serializes
      // instantiation, so just record the id here.
      auto it = ids_.find(child_key);
      int child_id;
      if (it != ids_.end()) {
        child_id = it->second;
      } else {
        child_id = static_cast<int>(keys_.size());
        ids_.emplace(child_key, child_id);
        keys_.push_back(child_key);
        rules_.emplace_back();
        instantiated_.push_back(false);
        pending_.push_back(child_id);
      }
      inst.idb_atoms.push_back(InstIdbAtom{child_id, std::move(terms)});
    } else {
      inst.edb_atoms.emplace_back(atom.predicate(), std::move(terms));
    }
  }
  return inst;
}

std::vector<int> KindSpace::RootKinds() {
  std::vector<int> out;
  for (int r : program_.RulesFor(program_.goal_predicate())) {
    std::vector<std::string> head_names;
    for (const Term& t : program_.rules()[r].head.terms()) {
      head_names.push_back(t.name());
    }
    int id = GetKind(KindKey{program_.goal_predicate(), PatternOf(head_names)});
    bool seen = false;
    for (int existing : out) seen = seen || existing == id;
    if (!seen) out.push_back(id);
  }
  return out;
}

ConjunctiveQuery BuildWitnessCq(
    const KindSpace& kinds, int root_kind, long root_token,
    const std::function<WitnessNode(int kind_id, long token)>& expand) {
  std::vector<Atom> atoms;
  int fresh = 0;
  const std::vector<int>& pattern = kinds.KeyOf(root_kind).pattern;
  std::vector<std::string> head_names(pattern.size());
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    head_names[i] = "x" + std::to_string(pattern[i]);
  }
  std::function<void(int, long, const std::vector<std::string>&)> collect =
      [&](int kind_id, long token, const std::vector<std::string>& names_in) {
        WitnessNode node = expand(kind_id, token);
        const InstRule& rule = *node.rule;
        std::map<int, std::string> names;
        for (std::size_t i = 0; i < rule.head.size(); ++i) {
          names.emplace(rule.head[i], names_in[i]);
        }
        auto name_of = [&](int w) -> const std::string& {
          auto [it, inserted] = names.emplace(w, "");
          if (inserted) it->second = "v" + std::to_string(fresh++);
          return it->second;
        };
        for (const auto& [pred, terms] : rule.edb_atoms) {
          std::vector<Term> ts;
          ts.reserve(terms.size());
          for (int w : terms) ts.push_back(Term::Variable(name_of(w)));
          atoms.emplace_back(pred, std::move(ts));
        }
        QCONT_CHECK(node.child_tokens.size() == rule.idb_atoms.size());
        for (std::size_t j = 0; j < rule.idb_atoms.size(); ++j) {
          std::vector<std::string> child_head;
          child_head.reserve(rule.idb_atoms[j].terms.size());
          for (int w : rule.idb_atoms[j].terms) child_head.push_back(name_of(w));
          collect(rule.idb_atoms[j].kind_id, node.child_tokens[j], child_head);
        }
      };
  collect(root_kind, root_token, head_names);
  std::vector<Term> head;
  for (const std::string& name : head_names) {
    head.push_back(Term::Variable(name));
  }
  std::vector<Atom> dedup;
  std::set<std::string> seen;
  for (Atom& a : atoms) {
    if (seen.insert(a.ToString()).second) dedup.push_back(std::move(a));
  }
  return ConjunctiveQuery(std::move(head), std::move(dedup));
}

}  // namespace internal
}  // namespace qcont

#ifndef QCONT_SERVER_SERVER_H_
#define QCONT_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "base/interner.h"
#include "base/thread_pool.h"
#include "obs/obs.h"
#include "server/plan_cache.h"

namespace qcont {
namespace server {

/// Server configuration. The defaults give a serial, cache-enabled server;
/// `threads` is the one knob production traffic needs.
struct ServerOptions {
  /// Concurrent in-flight requests: each scheduler batch fans its unique
  /// work items out over the process-wide work-stealing pool with this many
  /// workers. 1 = serial (the determinism reference).
  int threads = 1;
  /// Engine-internal parallelism per request (UCQ pair grids, semi-naive
  /// delta rounds). Only useful when `threads == 1`: nested parallel
  /// regions inside a pool worker degrade to serial loops by design.
  int engine_threads = 1;
  /// Admission control: at most this many requests per scheduler batch
  /// (`ServeStream` never buffers more than one batch ahead) ...
  std::size_t max_batch = 32;
  /// ... and any single request line larger than this is rejected up front
  /// with status "overloaded", before JSON parsing.
  std::size_t max_request_bytes = 1 << 20;
  /// Default per-request deadline in milliseconds; 0 = no deadline. A
  /// request's own "deadline_ms" field overrides (0 there = already
  /// expired, the deterministic deadline test hook). Deadlines are
  /// cooperative: checked at admission and between request phases, not
  /// inside an engine run (engines bound work by their own budgets).
  std::uint64_t default_deadline_ms = 0;
  /// Pre-pass for containment queries: replace Θ by its minimized
  /// equivalent (subsumption-pruned, per-disjunct cores, memoized in the
  /// plan cache) so the verdict cache also unifies redundant variants of
  /// one query. Skipped for queries above a small size guard (CoreOf is
  /// worst-case exponential).
  bool minimize_queries = true;
  /// Plan-cache capacities. `cache.obs` is overridden with `obs`.
  PlanCacheConfig cache;
  /// Observability sinks (optional, borrowed): `server/*` spans per batch,
  /// request, and phase; `server.*` counters; plan-cache counters.
  const ObsContext* obs = nullptr;
};

/// Monotonic server counters (also mirrored to the obs registry when a
/// sink is configured).
struct ServerStats {
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t coalesced = 0;  // duplicates folded into a batch leader
  std::uint64_t batches = 0;
};

/// A long-running containment-as-a-service driver over newline-delimited
/// JSON. One request per line:
///
///   {"id":1,"op":"containment","program":"...","query":"..."}
///   {"id":2,"op":"eval","program":"...","database":"..."}
///   {"id":3,"op":"analyze","query":"...","program":"..."}   (program opt.)
///
/// and one response line per request, in request order (schema v1, see
/// DESIGN.md §15). All requests share one Interner value pool, one plan
/// cache, and the process-wide thread pool.
///
/// Scheduling: requests are taken in batches of at most `max_batch`;
/// within a batch, requests with the same canonical work key (op +
/// canonical hashes) are coalesced — one leader computes, the duplicates
/// reuse its result with cache marker "coalesced". Unique work items fan
/// out over the pool. Because batch formation, coalescing, and the
/// engines themselves are deterministic, and cache hit/miss markers are
/// decided against the cache state at batch start (PlanCache epochs:
/// entries inserted by a concurrently running work item of the same
/// batch are reused but reported "miss"), the response stream (modulo
/// the elapsed_us timing field) is identical for every `threads` value.
///
/// Thread safety: one Server may be driven from one thread at a time
/// (`ServeStream`/`HandleBatch`/`HandleLine` are not reentrant); the
/// concurrency happens inside HandleBatch.
class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Processes one request line; returns one response line (no '\n').
  std::string HandleLine(const std::string& line);

  /// Processes a batch of request lines (split internally into chunks of
  /// `max_batch`); returns one response line per request, in order.
  std::vector<std::string> HandleBatch(const std::vector<std::string>& lines);

  /// Replays a newline-delimited request stream: greedily groups already-
  /// buffered input lines into batches (so piped replay files get full
  /// batches while an interactive session gets batch size 1), writes one
  /// response line per request in request order, flushing after each
  /// batch. Returns at end of input.
  void ServeStream(std::istream& in, std::ostream& out);

  PlanCache& cache() { return cache_; }
  const std::shared_ptr<Interner>& pool() const { return pool_; }
  ServerStats stats() const;

 private:
  std::vector<std::string> HandleChunk(const std::vector<std::string>& lines);

  ServerOptions options_;
  std::shared_ptr<Interner> pool_;  // shared value pool across all requests
  PlanCache cache_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> ok_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> deadline_exceeded_{0};
  std::atomic<std::uint64_t> overloaded_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> batches_{0};
};

}  // namespace server
}  // namespace qcont

#endif  // QCONT_SERVER_SERVER_H_

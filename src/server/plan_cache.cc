#include "server/plan_cache.h"

namespace qcont {
namespace server {

template <typename V>
std::optional<V> PlanCache::Shard<V>::Lookup(const PlanKey& key,
                                             std::uint64_t current_epoch,
                                             bool* stable) {
  if (stable != nullptr) *stable = false;
  std::lock_guard<std::mutex> lock(mu);
  auto it = index.find(key);
  if (it == index.end()) {
    ++misses;
    return std::nullopt;
  }
  ++hits;
  if (stable != nullptr) *stable = it->second->epoch < current_epoch;
  order.splice(order.begin(), order, it->second);  // refresh recency
  return it->second->value;
}

template <typename V>
std::uint64_t PlanCache::Shard<V>::Insert(const PlanKey& key, V value,
                                          std::uint64_t epoch) {
  if (capacity == 0) return 0;
  std::lock_guard<std::mutex> lock(mu);
  auto it = index.find(key);
  if (it != index.end()) {
    // Keep the original epoch: the entry already existed, so its
    // stability classification must not regress on a re-insert.
    it->second->value = std::move(value);
    order.splice(order.begin(), order, it->second);
    return 0;
  }
  order.emplace_front(Entry{key, std::move(value), epoch});
  index.emplace(key, order.begin());
  ++insertions;
  std::uint64_t evicted = 0;
  while (index.size() > capacity) {
    index.erase(order.back().key);
    order.pop_back();
    ++evictions;
    ++evicted;
  }
  return evicted;
}

template <typename V>
void PlanCache::Shard<V>::Collect(PlanCacheStats* out) const {
  std::lock_guard<std::mutex> lock(mu);
  out->hits += hits;
  out->misses += misses;
  out->insertions += insertions;
  out->evictions += evictions;
  out->entries += index.size();
}

template <typename V>
void PlanCache::Shard<V>::Clear() {
  std::lock_guard<std::mutex> lock(mu);
  index.clear();
  order.clear();
}

PlanCache::PlanCache(PlanCacheConfig config)
    : config_(config),
      artifacts_(ProgramArtifactCacheConfig{config.artifact_capacity,
                                            config.obs}) {
  verdicts_.capacity = config.verdict_capacity;
  reports_.capacity = config.analysis_capacity;
  cores_.capacity = config.core_capacity;
  evals_.capacity = config.eval_capacity;
}

void PlanCache::Publish(const char* kind, bool hit) const {
  ObsCount(config_.obs,
           std::string("server.cache.") + kind + (hit ? ".hits" : ".misses"),
           1);
}

void PlanCache::PublishInsert(const char* kind, std::uint64_t evicted) const {
  ObsCount(config_.obs, std::string("server.cache.") + kind + ".insertions", 1);
  if (evicted > 0) {
    ObsCount(config_.obs, std::string("server.cache.") + kind + ".evictions",
             evicted);
  }
  ObsGauge(config_.obs, "server.cache.entries",
           static_cast<std::uint64_t>(stats().entries));
}

void PlanCache::BeginEpoch() {
  epoch_.fetch_add(1, std::memory_order_relaxed);
  artifacts_.BeginEpoch();
}

std::optional<CachedVerdict> PlanCache::LookupVerdict(const PlanKey& key,
                                                      bool* stable) {
  auto out =
      verdicts_.Lookup(key, epoch_.load(std::memory_order_relaxed), stable);
  Publish("verdict", out.has_value());
  return out;
}

void PlanCache::InsertVerdict(const PlanKey& key, CachedVerdict verdict) {
  PublishInsert("verdict",
                verdicts_.Insert(key, std::move(verdict),
                                 epoch_.load(std::memory_order_relaxed)));
}

std::optional<analysis::AnalysisReport> PlanCache::LookupAnalysis(
    const PlanKey& key, bool* stable) {
  auto out =
      reports_.Lookup(key, epoch_.load(std::memory_order_relaxed), stable);
  Publish("analysis", out.has_value());
  return out;
}

void PlanCache::InsertAnalysis(const PlanKey& key,
                               analysis::AnalysisReport report) {
  PublishInsert("analysis",
                reports_.Insert(key, std::move(report),
                                epoch_.load(std::memory_order_relaxed)));
}

std::optional<UnionQuery> PlanCache::LookupCoreUcq(std::uint64_t query_hash,
                                                   bool* stable) {
  auto out = cores_.Lookup({query_hash, 0},
                           epoch_.load(std::memory_order_relaxed), stable);
  Publish("core", out.has_value());
  return out;
}

void PlanCache::InsertCoreUcq(std::uint64_t query_hash, UnionQuery core) {
  PublishInsert("core",
                cores_.Insert({query_hash, 0}, std::move(core),
                              epoch_.load(std::memory_order_relaxed)));
}

std::optional<CachedEval> PlanCache::LookupEval(const PlanKey& key,
                                                bool* stable) {
  auto out =
      evals_.Lookup(key, epoch_.load(std::memory_order_relaxed), stable);
  Publish("eval", out.has_value());
  return out;
}

void PlanCache::InsertEval(const PlanKey& key, CachedEval eval) {
  PublishInsert("eval", evals_.Insert(key, std::move(eval),
                                      epoch_.load(std::memory_order_relaxed)));
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats out;
  verdicts_.Collect(&out);
  reports_.Collect(&out);
  cores_.Collect(&out);
  evals_.Collect(&out);
  return out;
}

void PlanCache::Clear() {
  verdicts_.Clear();
  reports_.Clear();
  cores_.Clear();
  evals_.Clear();
  artifacts_.Clear();
}

}  // namespace server
}  // namespace qcont

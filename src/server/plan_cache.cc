#include "server/plan_cache.h"

namespace qcont {
namespace server {

template <typename V>
std::optional<V> PlanCache::Shard<V>::Lookup(const PlanKey& key) {
  std::lock_guard<std::mutex> lock(mu);
  auto it = index.find(key);
  if (it == index.end()) {
    ++misses;
    return std::nullopt;
  }
  ++hits;
  order.splice(order.begin(), order, it->second);  // refresh recency
  return it->second->second;
}

template <typename V>
std::uint64_t PlanCache::Shard<V>::Insert(const PlanKey& key, V value) {
  if (capacity == 0) return 0;
  std::lock_guard<std::mutex> lock(mu);
  auto it = index.find(key);
  if (it != index.end()) {
    it->second->second = std::move(value);
    order.splice(order.begin(), order, it->second);
    return 0;
  }
  order.emplace_front(key, std::move(value));
  index.emplace(key, order.begin());
  ++insertions;
  std::uint64_t evicted = 0;
  while (index.size() > capacity) {
    index.erase(order.back().first);
    order.pop_back();
    ++evictions;
    ++evicted;
  }
  return evicted;
}

template <typename V>
void PlanCache::Shard<V>::Collect(PlanCacheStats* out) const {
  std::lock_guard<std::mutex> lock(mu);
  out->hits += hits;
  out->misses += misses;
  out->insertions += insertions;
  out->evictions += evictions;
  out->entries += index.size();
}

template <typename V>
void PlanCache::Shard<V>::Clear() {
  std::lock_guard<std::mutex> lock(mu);
  index.clear();
  order.clear();
}

PlanCache::PlanCache(PlanCacheConfig config) : config_(config) {
  verdicts_.capacity = config.verdict_capacity;
  reports_.capacity = config.analysis_capacity;
  cores_.capacity = config.core_capacity;
  evals_.capacity = config.eval_capacity;
}

void PlanCache::Publish(const char* kind, bool hit) const {
  ObsCount(config_.obs,
           std::string("server.cache.") + kind + (hit ? ".hits" : ".misses"),
           1);
}

void PlanCache::PublishInsert(const char* kind, std::uint64_t evicted) const {
  ObsCount(config_.obs, std::string("server.cache.") + kind + ".insertions", 1);
  if (evicted > 0) {
    ObsCount(config_.obs, std::string("server.cache.") + kind + ".evictions",
             evicted);
  }
  ObsGauge(config_.obs, "server.cache.entries",
           static_cast<std::uint64_t>(stats().entries));
}

std::optional<CachedVerdict> PlanCache::LookupVerdict(const PlanKey& key) {
  auto out = verdicts_.Lookup(key);
  Publish("verdict", out.has_value());
  return out;
}

void PlanCache::InsertVerdict(const PlanKey& key, CachedVerdict verdict) {
  PublishInsert("verdict", verdicts_.Insert(key, std::move(verdict)));
}

std::optional<analysis::AnalysisReport> PlanCache::LookupAnalysis(
    const PlanKey& key) {
  auto out = reports_.Lookup(key);
  Publish("analysis", out.has_value());
  return out;
}

void PlanCache::InsertAnalysis(const PlanKey& key,
                               analysis::AnalysisReport report) {
  PublishInsert("analysis", reports_.Insert(key, std::move(report)));
}

std::optional<UnionQuery> PlanCache::LookupCoreUcq(std::uint64_t query_hash) {
  auto out = cores_.Lookup({query_hash, 0});
  Publish("core", out.has_value());
  return out;
}

void PlanCache::InsertCoreUcq(std::uint64_t query_hash, UnionQuery core) {
  PublishInsert("core", cores_.Insert({query_hash, 0}, std::move(core)));
}

std::optional<CachedEval> PlanCache::LookupEval(const PlanKey& key) {
  auto out = evals_.Lookup(key);
  Publish("eval", out.has_value());
  return out;
}

void PlanCache::InsertEval(const PlanKey& key, CachedEval eval) {
  PublishInsert("eval", evals_.Insert(key, std::move(eval)));
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats out;
  verdicts_.Collect(&out);
  reports_.Collect(&out);
  cores_.Collect(&out);
  evals_.Collect(&out);
  return out;
}

void PlanCache::Clear() {
  verdicts_.Clear();
  reports_.Clear();
  cores_.Clear();
  evals_.Clear();
}

}  // namespace server
}  // namespace qcont

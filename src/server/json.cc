#include "server/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace qcont {
namespace server {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::Object(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

const JsonValue* JsonValue::Get(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string JsonValue::Dump() const {
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return bool_ ? "true" : "false";
    case Kind::kNumber: {
      // JSON has no inf/nan (the parser rejects them; this guards values
      // constructed programmatically).
      if (!std::isfinite(number_)) return "null";
      // Integral values (the only numbers the protocol emits) print without
      // a fraction so ids round-trip textually.
      if (number_ == std::floor(number_) && std::fabs(number_) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", number_);
        return buf;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", number_);
      return buf;
    }
    case Kind::kString:
      return "\"" + JsonEscape(string_) + "\"";
    case Kind::kArray: {
      std::string out = "[";
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ",";
        out += array_[i].Dump();
      }
      return out + "]";
    }
    case Kind::kObject: {
      std::string out = "{";
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out += ",";
        first = false;
        out += "\"" + JsonEscape(key) + "\":" + value.Dump();
      }
      return out + "}";
    }
  }
  return "null";
}

namespace {

/// Recursive-descent parser over a raw char range. Depth-limited so a
/// hostile request cannot blow the stack.
class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Result<JsonValue> Parse() {
    SkipSpace();
    JsonValue v;
    Status st = ParseValue(&v, 0);
    if (!st.ok()) return st;
    SkipSpace();
    if (pos_ != s_.size()) {
      return Error("trailing characters after JSON value");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 32;

  Status Error(const std::string& what) const {
    return InvalidArgumentError("json: " + what + " at offset " +
                                std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= s_.size()) return Error("unexpected end of input");
    char c = s_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') return ParseString(out);
    if (c == 't' || c == 'f') return ParseBool(out);
    if (c == 'n') return ParseNull(out);
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
    return Error("unexpected character");
  }

  Status ParseLiteral(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return Error("bad literal");
      ++pos_;
    }
    return Status::Ok();
  }

  Status ParseNull(JsonValue* out) {
    QCONT_RETURN_IF_ERROR(ParseLiteral("null"));
    *out = JsonValue();
    return Status::Ok();
  }

  Status ParseBool(JsonValue* out) {
    if (s_[pos_] == 't') {
      QCONT_RETURN_IF_ERROR(ParseLiteral("true"));
      *out = JsonValue::Bool(true);
    } else {
      QCONT_RETURN_IF_ERROR(ParseLiteral("false"));
      *out = JsonValue::Bool(false);
    }
    return Status::Ok();
  }

  Status ParseNumber(JsonValue* out) {
    std::size_t start = pos_;
    Consume('-');
    // RFC 8259: no leading zeros ("01" is two tokens, i.e. an error here).
    if (pos_ + 1 < s_.size() && s_[pos_] == '0' &&
        std::isdigit(static_cast<unsigned char>(s_[pos_ + 1]))) {
      return Error("bad number (leading zero)");
    }
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    const std::string text = s_.substr(start, pos_ - start);
    char* end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0') return Error("bad number");
    // strtod overflows literals like 1e999 to ±inf; admitting those would
    // let Dump() echo invalid JSON back into the response stream.
    if (!std::isfinite(v)) return Error("bad number (out of range)");
    *out = JsonValue::Number(v);
    return Status::Ok();
  }

  Status ParseString(JsonValue* out) {
    std::string value;
    QCONT_RETURN_IF_ERROR(ParseStringRaw(&value));
    *out = JsonValue::String(std::move(value));
    return Status::Ok();
  }

  Status ParseStringRaw(std::string* out) {
    if (!Consume('"')) return Error("expected string");
    out->clear();
    while (true) {
      if (pos_ >= s_.size()) return Error("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return Status::Ok();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return Error("unterminated escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return Error("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("bad \\u escape");
          }
          if (code >= 0xD800 && code <= 0xDFFF) {
            return Error("surrogate \\u escapes unsupported");
          }
          // UTF-8 encode the BMP code point.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("bad escape");
      }
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    Consume('[');
    std::vector<JsonValue> items;
    SkipSpace();
    if (Consume(']')) {
      *out = JsonValue::Array(std::move(items));
      return Status::Ok();
    }
    while (true) {
      JsonValue item;
      SkipSpace();
      QCONT_RETURN_IF_ERROR(ParseValue(&item, depth + 1));
      items.push_back(std::move(item));
      SkipSpace();
      if (Consume(']')) break;
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
    *out = JsonValue::Array(std::move(items));
    return Status::Ok();
  }

  Status ParseObject(JsonValue* out, int depth) {
    Consume('{');
    std::map<std::string, JsonValue> members;
    SkipSpace();
    if (Consume('}')) {
      *out = JsonValue::Object(std::move(members));
      return Status::Ok();
    }
    while (true) {
      SkipSpace();
      std::string key;
      QCONT_RETURN_IF_ERROR(ParseStringRaw(&key));
      SkipSpace();
      if (!Consume(':')) return Error("expected ':'");
      SkipSpace();
      JsonValue value;
      QCONT_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      members[std::move(key)] = std::move(value);
      SkipSpace();
      if (Consume('}')) break;
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
    *out = JsonValue::Object(std::move(members));
    return Status::Ok();
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace server
}  // namespace qcont

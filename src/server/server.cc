#include "server/server.h"

#include <chrono>
#include <map>
#include <optional>
#include <tuple>
#include <utility>

#include "analysis/report.h"
#include "core/router.h"
#include "cq/containment.h"
#include "cq/core.h"
#include "datalog/eval.h"
#include "parser/parser.h"
#include "server/json.h"

namespace qcont {
namespace server {

namespace {

using Clock = std::chrono::steady_clock;

/// Machine-readable route names for the wire format (RouteName() is the
/// human-facing CLI string).
const char* WireRouteName(ContainmentRoute route) {
  switch (route) {
    case ContainmentRoute::kAckEngine: return "ack";
    case ContainmentRoute::kGeneralEngine: return "type-engine";
  }
  return "unknown";
}

/// The fully rendered pieces of a response except id/cache/elapsed, which
/// differ between a coalescing leader and its followers.
struct Outcome {
  std::string status = "ok";  // ok|error|deadline_exceeded|overloaded
  std::string cache = "none"; // hit|miss|coalesced|none
  std::string error_code;     // StatusCodeName(...) when status == "error"
  std::string error_message;
  std::string result_json;    // rendered object, empty unless status == ok

  static Outcome Error(const Status& status) {
    Outcome out;
    out.status = "error";
    out.error_code = StatusCodeName(status.code());
    out.error_message = status.message();
    return out;
  }
  static Outcome Deadline() {
    Outcome out;
    out.status = "deadline_exceeded";
    return out;
  }
  static Outcome Overloaded(const std::string& message) {
    Outcome out;
    out.status = "overloaded";
    out.error_message = message;
    return out;
  }
};

/// Size guard for the minimization pre-pass: CoreOf is worst-case
/// exponential, so only queries comfortably inside the guard are minimized
/// (larger ones still get verdict-cached under their plain canonical hash).
bool SmallEnoughToMinimize(const UnionQuery& ucq) {
  if (ucq.disjuncts().size() > 16) return false;
  for (const ConjunctiveQuery& cq : ucq.disjuncts()) {
    if (cq.atoms().size() > 24) return false;
  }
  return true;
}

/// Subsumption-pruned, per-disjunct-cored equivalent of `ucq`: every
/// disjunct is replaced by its core, then disjuncts contained in another
/// surviving disjunct are dropped (ties between equivalent disjuncts keep
/// the earliest). The result is equivalent to `ucq`, so verdicts and
/// witnesses transfer verbatim.
Result<UnionQuery> MinimizeUcq(const UnionQuery& ucq) {
  std::vector<ConjunctiveQuery> cores;
  cores.reserve(ucq.disjuncts().size());
  for (const ConjunctiveQuery& cq : ucq.disjuncts()) {
    QCONT_ASSIGN_OR_RETURN(ConjunctiveQuery core, CoreOf(cq));
    cores.push_back(std::move(core));
  }
  const std::size_t n = cores.size();
  std::vector<bool> dead(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n && !dead[i]; ++j) {
      if (j == i || dead[j]) continue;
      QCONT_ASSIGN_OR_RETURN(bool fwd, CqContained(cores[i], cores[j]));
      if (!fwd) continue;
      if (j < i) {
        dead[i] = true;  // subsumed by (or equivalent to) an earlier survivor
      } else {
        QCONT_ASSIGN_OR_RETURN(bool back, CqContained(cores[j], cores[i]));
        if (!back) dead[i] = true;  // strictly subsumed by a later disjunct
      }
    }
  }
  std::vector<ConjunctiveQuery> kept;
  for (std::size_t i = 0; i < n; ++i) {
    if (!dead[i]) kept.push_back(std::move(cores[i]));
  }
  return UnionQuery(std::move(kept));
}

std::string TuplesToJson(const std::vector<Tuple>& tuples) {
  std::string out = "[";
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    if (i > 0) out += ",";
    out += "[";
    for (std::size_t j = 0; j < tuples[i].size(); ++j) {
      if (j > 0) out += ",";
      out += "\"" + JsonEscape(tuples[i][j]) + "\"";
    }
    out += "]";
  }
  return out + "]";
}

/// A request after JSON decoding and input parsing, carrying everything
/// the execution phase needs plus the canonical work key that batch-level
/// coalescing groups by.
struct Prepared {
  std::string id_json = "null";  // rendered echo of the "id" field
  std::string op;
  Clock::time_point admitted{};
  std::uint64_t deadline_ms = 0;
  bool has_deadline = false;

  std::optional<DatalogProgram> program;
  std::optional<UnionQuery> query;
  std::optional<Database> database;

  // Coalescing key: (op, program-or-0, query-or-database hash).
  bool coalescable = false;
  std::uint64_t key1 = 0;
  std::uint64_t key2 = 0;

  bool done = false;  // `outcome` already decided during prepare
  Outcome outcome;

  bool Expired() const {
    if (!has_deadline) return false;
    if (deadline_ms == 0) return true;  // deterministic "already expired" hook
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        Clock::now() - admitted);
    return static_cast<std::uint64_t>(elapsed.count()) >= deadline_ms;
  }
};

/// Renders one response line (schema v1). `elapsed_us` is measured by the
/// caller so followers report their own latency.
std::string RenderResponse(const std::string& id_json, const std::string& op,
                           const Outcome& outcome, std::uint64_t elapsed_us) {
  std::string out = "{\"schema_version\":1,";
  out += "\"id\":" + id_json + ",";
  out += "\"op\":\"" + JsonEscape(op) + "\",";
  out += "\"status\":\"" + outcome.status + "\",";
  out += "\"cache\":\"" + outcome.cache + "\",";
  out += "\"elapsed_us\":" + std::to_string(elapsed_us);
  if (outcome.status == "ok") {
    out += ",\"result\":" +
           (outcome.result_json.empty() ? std::string("{}")
                                        : outcome.result_json);
  } else {
    out += ",\"error\":{\"code\":\"" +
           JsonEscape(outcome.error_code.empty() ? outcome.status
                                                 : outcome.error_code) +
           "\",\"message\":\"" + JsonEscape(outcome.error_message) + "\"}";
  }
  return out + "}";
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(options), pool_(std::make_shared<Interner>()), cache_([&] {
        PlanCacheConfig config = options.cache;
        config.obs = options.obs;
        return config;
      }()) {}

Server::~Server() = default;

ServerStats Server::stats() const {
  ServerStats out;
  out.requests = requests_.load(std::memory_order_relaxed);
  out.ok = ok_.load(std::memory_order_relaxed);
  out.errors = errors_.load(std::memory_order_relaxed);
  out.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  out.overloaded = overloaded_.load(std::memory_order_relaxed);
  out.coalesced = coalesced_.load(std::memory_order_relaxed);
  out.batches = batches_.load(std::memory_order_relaxed);
  return out;
}

namespace {

/// Decodes and input-parses one request line into a Prepared. Never runs
/// an engine; every early exit fills `outcome` and sets `done`.
void PrepareRequest(const std::string& line, const ServerOptions& options,
                    Prepared* p) {
  p->admitted = Clock::now();
  if (options.default_deadline_ms > 0) {
    p->has_deadline = true;
    p->deadline_ms = options.default_deadline_ms;
  }
  if (line.size() > options.max_request_bytes) {
    p->done = true;
    p->outcome = Outcome::Overloaded(
        "request exceeds max_request_bytes (" +
        std::to_string(options.max_request_bytes) + ")");
    return;
  }
  ObsSpan span(options.obs, "server/parse", "server");
  auto parsed = ParseJson(line);
  if (!parsed.ok()) {
    p->done = true;
    p->outcome = Outcome::Error(parsed.status());
    return;
  }
  if (!parsed->is_object()) {
    p->done = true;
    p->outcome =
        Outcome::Error(InvalidArgumentError("request must be a JSON object"));
    return;
  }
  if (const JsonValue* id = parsed->Get("id");
      id != nullptr && (id->is_string() || id->is_number())) {
    p->id_json = id->Dump();
  }
  const JsonValue* op = parsed->Get("op");
  if (op == nullptr || !op->is_string()) {
    p->done = true;
    p->outcome = Outcome::Error(
        InvalidArgumentError("request needs a string \"op\" field"));
    return;
  }
  p->op = op->string_value();
  if (const JsonValue* deadline = parsed->Get("deadline_ms");
      deadline != nullptr) {
    if (!deadline->is_number() || deadline->number_value() < 0) {
      p->done = true;
      p->outcome = Outcome::Error(
          InvalidArgumentError("\"deadline_ms\" must be a number >= 0"));
      return;
    }
    p->has_deadline = true;
    p->deadline_ms = static_cast<std::uint64_t>(deadline->number_value());
  }

  auto text_field = [&](const char* name) -> const std::string* {
    const JsonValue* v = parsed->Get(name);
    return (v != nullptr && v->is_string()) ? &v->string_value() : nullptr;
  };
  auto fail = [&](Status status) {
    p->done = true;
    p->outcome = Outcome::Error(std::move(status));
  };

  if (p->op == "containment" || p->op == "analyze") {
    const std::string* query_text = text_field("query");
    if (query_text == nullptr) {
      return fail(InvalidArgumentError("\"" + p->op +
                                       "\" needs a string \"query\" field"));
    }
    auto query = ParseUcq(*query_text);
    if (!query.ok()) return fail(query.status());
    p->query = std::move(*query);
    const std::string* program_text = text_field("program");
    if (program_text == nullptr && p->op == "containment") {
      return fail(InvalidArgumentError(
          "\"containment\" needs a string \"program\" field"));
    }
    if (program_text != nullptr) {
      auto program = ParseProgram(*program_text);
      if (!program.ok()) return fail(program.status());
      p->program = std::move(*program);
      p->key1 = analysis::CanonicalProgramHash(*p->program);
    }
    p->key2 = analysis::CanonicalQueryHash(*p->query);
    p->coalescable = true;
  } else if (p->op == "eval") {
    const std::string* program_text = text_field("program");
    const std::string* db_text = text_field("database");
    if (program_text == nullptr || db_text == nullptr) {
      return fail(InvalidArgumentError(
          "\"eval\" needs string \"program\" and \"database\" fields"));
    }
    auto program = ParseProgram(*program_text);
    if (!program.ok()) return fail(program.status());
    auto database = ParseDatabase(*db_text);
    if (!database.ok()) return fail(database.status());
    p->program = std::move(*program);
    p->database = std::move(*database);
    p->key1 = analysis::CanonicalProgramHash(*p->program);
    p->key2 = analysis::CanonicalDatabaseHash(*p->database);
    p->coalescable = true;
  } else {
    return fail(InvalidArgumentError("unknown op \"" + p->op + "\""));
  }
  if (p->Expired()) {
    p->done = true;
    p->outcome = Outcome::Deadline();
  }
}

/// Containment: minimize Θ (memoized), consult the verdict cache under the
/// minimized canonical hash, run the routed engines on a miss.
Outcome RunContainment(const ServerOptions& options, PlanCache& cache,
                       Prepared& p) {
  const DatalogProgram& program = *p.program;
  const UnionQuery* theta = &*p.query;
  std::uint64_t query_hash = p.key2;

  std::optional<UnionQuery> minimized;
  if (options.minimize_queries && SmallEnoughToMinimize(*p.query)) {
    ObsSpan span(options.obs, "server/minimize", "server");
    if (auto hit = cache.LookupCoreUcq(p.key2)) {
      minimized = std::move(*hit);
    } else {
      auto result = MinimizeUcq(*p.query);
      // Minimization is an optimization: on any error keep the original.
      if (result.ok()) {
        minimized = std::move(*result);
        cache.InsertCoreUcq(p.key2, *minimized);
      }
    }
    if (minimized.has_value()) {
      theta = &*minimized;
      query_hash = analysis::CanonicalQueryHash(*minimized);
    }
  }

  // The response marker reports "hit" only for entries that predate the
  // batch: an entry inserted by a concurrently running work item (a
  // same-batch analyze over the same Π/Θ, or another containment whose
  // query minimized to the same core) is still reused, but marked "miss"
  // so the marker never depends on how the batch was scheduled.
  const PlanKey verdict_key{p.key1, query_hash};
  bool stable = false;
  std::optional<CachedVerdict> verdict =
      cache.LookupVerdict(verdict_key, &stable);
  const std::string cache_marker = stable ? "hit" : "miss";
  if (!verdict.has_value()) {
    if (p.Expired()) return Outcome::Deadline();

    analysis::AnalysisReport report;
    if (auto hit = cache.LookupAnalysis(verdict_key)) {
      report = std::move(*hit);
    } else {
      analysis::RoutingOptions routing;
      routing.use_cache = false;  // the plan cache replaces the global one
      routing.obs = options.obs;
      report = analysis::AnalyzeForRouting(program, *theta, routing);
      cache.InsertAnalysis(verdict_key, report);
    }

    ObsSpan span(options.obs, "server/engine", "server");
    RouterOptions router;
    router.obs = options.obs;
    router.use_analysis_cache = false;
    router.report = &report;
    // A verdict miss on a repeated Π still reuses the frozen kind-space
    // artifact: the general engine skips straight to the Θ-dependent
    // fixpoint over the memoized expansion.
    router.artifact_cache = &cache.artifacts();
    router.general.exec.threads = options.engine_threads;
    auto routed = DecideContainment(program, *theta, router);
    if (!routed.ok()) return Outcome::Error(routed.status());

    CachedVerdict built;
    built.contained = routed->answer.contained;
    built.route = routed->route;
    built.ack_level = routed->ack_level;
    if (routed->answer.witness.has_value()) {
      built.witness = routed->answer.witness->ToString();
      built.counterexample_db =
          CanonicalDatabase(*routed->answer.witness).ToString();
    }
    cache.InsertVerdict(verdict_key, built);
    verdict = std::move(built);
  }

  Outcome out;
  out.cache = cache_marker;
  out.result_json = "{\"contained\":";
  out.result_json += verdict->contained ? "true" : "false";
  out.result_json +=
      ",\"route\":\"" + std::string(WireRouteName(verdict->route)) + "\"";
  out.result_json += ",\"ack_level\":" + std::to_string(verdict->ack_level);
  if (verdict->witness.has_value()) {
    out.result_json += ",\"witness\":\"" + JsonEscape(*verdict->witness) + "\"";
  }
  if (verdict->counterexample_db.has_value()) {
    out.result_json += ",\"counterexample_db\":\"" +
                       JsonEscape(*verdict->counterexample_db) + "\"";
  }
  out.result_json += "}";
  return out;
}

/// Evaluation: Π(D) keyed by (program, canonical database) hashes. The
/// working database is rebuilt against the server's shared value pool so
/// repeated databases re-use interned values across requests.
Outcome RunEval(const ServerOptions& options, PlanCache& cache,
                const std::shared_ptr<Interner>& pool, Prepared& p) {
  const PlanKey key{p.key1, p.key2};
  bool stable = false;
  std::optional<CachedEval> cached = cache.LookupEval(key, &stable);
  const std::string cache_marker = stable ? "hit" : "miss";
  if (!cached.has_value()) {
    if (p.Expired()) return Outcome::Deadline();
    ObsSpan span(options.obs, "server/engine", "server");
    Database db(pool);
    for (const std::string& relation : p.database->Relations()) {
      for (const Tuple& tuple : p.database->Facts(relation)) {
        db.AddFact(relation, tuple);
      }
    }
    EvalOptions eval;
    eval.exec.threads = options.engine_threads;
    eval.obs = options.obs;
    auto tuples = EvaluateGoal(*p.program, db, eval);
    if (!tuples.ok()) return Outcome::Error(tuples.status());
    CachedEval built;
    built.tuples = std::move(*tuples);
    cache.InsertEval(key, built);
    cached = std::move(built);
  }
  Outcome out;
  out.cache = cache_marker;
  out.result_json = "{\"goal\":\"" + JsonEscape(p.program->goal_predicate()) +
                    "\",\"tuples\":" + TuplesToJson(cached->tuples) + "}";
  return out;
}

/// Analysis: the AnalysisReport itself is the product; cached like the
/// verdicts, rendered as its schema-v1 JSON.
Outcome RunAnalyze(const ServerOptions& options, PlanCache& cache,
                   Prepared& p) {
  // The analysis shard is shared with RunContainment (which reads and
  // fills it under the same key), so hit/miss must use the epoch-stable
  // flag: a report inserted by a same-batch containment is reused but
  // reported "miss", keeping the marker schedule-independent.
  const PlanKey key{p.key1, p.key2};
  bool stable = false;
  std::optional<analysis::AnalysisReport> report =
      cache.LookupAnalysis(key, &stable);
  const std::string cache_marker = stable ? "hit" : "miss";
  if (!report.has_value()) {
    if (p.Expired()) return Outcome::Deadline();
    ObsSpan span(options.obs, "server/engine", "server");
    analysis::RoutingOptions routing;
    routing.use_cache = false;
    routing.obs = options.obs;
    report = p.program.has_value()
                 ? analysis::AnalyzeForRouting(*p.program, *p.query, routing)
                 : analysis::AnalyzeForRouting(*p.query, routing);
    cache.InsertAnalysis(key, *report);
  }
  Outcome out;
  out.cache = cache_marker;
  out.result_json = "{\"report\":" + report->ToJson() + "}";
  return out;
}

}  // namespace

std::vector<std::string> Server::HandleChunk(
    const std::vector<std::string>& lines) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  ObsCount(options_.obs, "server.batches", 1);
  ObsSpan batch_span(options_.obs, "server/batch", "server");
  batch_span.AddArg("requests", lines.size());
  // New cache epoch: only entries that predate this batch count as "hit"
  // in response markers, so markers cannot depend on the schedule of the
  // batch's own insertions.
  cache_.BeginEpoch();

  const std::size_t n = lines.size();
  std::vector<Prepared> prepared(n);
  ExecContext exec;
  exec.threads = options_.threads;
  // Phase 1: decode + input-parse every request (embarrassingly parallel).
  ParallelFor(exec, n,
              [&](std::size_t i) { PrepareRequest(lines[i], options_, &prepared[i]); });

  // Phase 2: group by canonical work key; the first occurrence leads.
  std::map<std::tuple<std::string, std::uint64_t, std::uint64_t>, std::size_t>
      leader_of;
  std::vector<std::size_t> leader(n);
  std::vector<std::size_t> leaders;
  for (std::size_t i = 0; i < n; ++i) {
    if (prepared[i].done) continue;
    if (!prepared[i].coalescable) {
      leader[i] = i;
      leaders.push_back(i);
      continue;
    }
    auto [it, inserted] = leader_of.try_emplace(
        std::make_tuple(prepared[i].op, prepared[i].key1, prepared[i].key2), i);
    leader[i] = it->second;
    if (inserted) leaders.push_back(i);
  }
  batch_span.AddArg("unique", leaders.size());

  // Phase 3: run the unique work items over the pool.
  ParallelFor(exec, leaders.size(), [&](std::size_t k) {
    Prepared& p = prepared[leaders[k]];
    ObsSpan span(options_.obs, "server/request", "server");
    if (p.op == "containment") {
      p.outcome = RunContainment(options_, cache_, p);
    } else if (p.op == "eval") {
      p.outcome = RunEval(options_, cache_, pool_, p);
    } else {
      p.outcome = RunAnalyze(options_, cache_, p);
    }
    p.done = true;
  });

  // Phase 4: render in request order; followers copy their leader's
  // outcome with the "coalesced" cache marker.
  std::vector<std::string> responses;
  responses.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Prepared& p = prepared[i];
    Outcome outcome;
    if (p.done) {
      outcome = p.outcome;
    } else {
      outcome = prepared[leader[i]].outcome;
      if (outcome.status == "ok") {
        outcome.cache = "coalesced";
        coalesced_.fetch_add(1, std::memory_order_relaxed);
        ObsCount(options_.obs, "server.coalesced", 1);
      }
    }
    requests_.fetch_add(1, std::memory_order_relaxed);
    ObsCount(options_.obs, "server.requests", 1);
    if (outcome.status == "ok") {
      ok_.fetch_add(1, std::memory_order_relaxed);
    } else if (outcome.status == "deadline_exceeded") {
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    } else if (outcome.status == "overloaded") {
      overloaded_.fetch_add(1, std::memory_order_relaxed);
    } else {
      errors_.fetch_add(1, std::memory_order_relaxed);
    }
    ObsCount(options_.obs, "server.responses." + outcome.status, 1);
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        Clock::now() - p.admitted);
    responses.push_back(RenderResponse(
        p.id_json, p.op.empty() ? "unknown" : p.op, outcome,
        static_cast<std::uint64_t>(elapsed.count())));
  }
  return responses;
}

std::vector<std::string> Server::HandleBatch(
    const std::vector<std::string>& lines) {
  std::vector<std::string> responses;
  responses.reserve(lines.size());
  for (std::size_t start = 0; start < lines.size();
       start += options_.max_batch) {
    const std::size_t end =
        std::min(lines.size(), start + options_.max_batch);
    std::vector<std::string> chunk(lines.begin() + start, lines.begin() + end);
    std::vector<std::string> out = HandleChunk(chunk);
    responses.insert(responses.end(), std::make_move_iterator(out.begin()),
                     std::make_move_iterator(out.end()));
  }
  return responses;
}

std::string Server::HandleLine(const std::string& line) {
  return HandleChunk({line}).front();
}

void Server::ServeStream(std::istream& in, std::ostream& out) {
  std::string line;
  while (std::getline(in, line)) {
    std::vector<std::string> batch;
    if (!line.empty()) batch.push_back(line);
    // Greedily take already-buffered lines so replay files form full
    // batches while an interactive session stays at batch size 1.
    while (batch.size() < options_.max_batch && in.rdbuf()->in_avail() > 0 &&
           std::getline(in, line)) {
      if (!line.empty()) batch.push_back(line);
    }
    if (batch.empty()) continue;
    for (const std::string& response : HandleChunk(batch)) {
      out << response << "\n";
    }
    out.flush();
  }
}

}  // namespace server
}  // namespace qcont

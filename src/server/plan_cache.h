#ifndef QCONT_SERVER_PLAN_CACHE_H_
#define QCONT_SERVER_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/report.h"
#include "base/hash.h"
#include "core/program_artifact_cache.h"
#include "core/router.h"
#include "cq/database.h"
#include "cq/query.h"
#include "obs/obs.h"

namespace qcont {
namespace server {

/// Cache key: the PR-6 canonical (alpha-renamed) FNV-1a hashes. For
/// verdict/analysis entries the pair is (program_hash, query_hash); for
/// evaluation entries it is (program_hash, database_hash); single-hash
/// entries (core UCQs) use {hash, 0}.
using PlanKey = std::pair<std::uint64_t, std::uint64_t>;

/// A memoized containment verdict: everything a repeated Π/Θ pair needs to
/// answer without re-expanding the type-automaton state space — the verdict
/// itself, the route and ACk level the router chose, and for "not
/// contained" the witness expansion plus its canonical database (a concrete
/// counterexample D with goal(D) ∈ Π(D) \ Θ(D)).
struct CachedVerdict {
  bool contained = false;
  ContainmentRoute route = ContainmentRoute::kGeneralEngine;
  int ack_level = 0;
  std::optional<std::string> witness;            // θ_τ in CQ text form
  std::optional<std::string> counterexample_db;  // canonical DB of θ_τ
};

/// A memoized evaluation result: the goal tuples of Π(D), keyed by
/// (program_hash, canonical database hash).
struct CachedEval {
  std::vector<Tuple> tuples;
};

/// Aggregate counters across all four entry kinds. `entries` is the
/// current total population, the rest are monotonic.
struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
};

/// Per-kind LRU capacities plus the observability sink. A capacity of 0
/// disables that kind (every lookup misses, inserts are dropped).
struct PlanCacheConfig {
  std::size_t verdict_capacity = 4096;
  std::size_t analysis_capacity = 4096;
  std::size_t core_capacity = 4096;
  std::size_t eval_capacity = 512;
  /// Capacity of the program-keyed kind-space artifact cache (a fifth,
  /// structurally different layer: it memoizes the type engine's Π-only
  /// expansion below the verdict layer, so a verdict *miss* on a repeated
  /// program still skips re-expansion). 0 disables it.
  std::size_t artifact_capacity = 64;
  /// Optional, borrowed. Publishes `server.cache.<kind>.{hits,misses,
  /// insertions,evictions}` counters per lookup/insert and a
  /// `server.cache.entries` gauge after every insert.
  const ObsContext* obs = nullptr;
};

/// The server's plan cache: four independent LRU maps keyed by canonical
/// hashes, so alpha-renamed resubmissions of the same query/program hit.
///
///  - **verdict**: containment verdicts with witnesses (CachedVerdict),
///  - **analysis**: AnalysisReports (the routed entry points' input),
///  - **core**: minimized (subsumption-pruned, per-disjunct-cored) UCQs,
///    stored structurally (the CQ text form is display-only, not
///    re-parseable),
///  - **eval**: goal tuples of Π(D) per (program, database) pair.
///
/// Thread safety: one mutex per kind; entries are returned by value. All
/// methods may be called concurrently. Eviction is strict LRU per kind
/// (lookup refreshes recency).
///
/// Epochs: every entry records the epoch it was first inserted in, and
/// `BeginEpoch` (called by the server at batch start) advances the
/// counter. A lookup's optional `stable` out-param reports whether the
/// entry predates the current epoch — i.e. whether it would be present no
/// matter how the current batch's work items are scheduled. The server
/// derives its "hit"/"miss" response markers from `stable`, not from mere
/// presence, which keeps the response stream identical across thread
/// counts even when concurrent work items share a cache key (e.g. a
/// containment and an analyze over the same Π/Θ, or two containments
/// whose queries minimize to the same core).
class PlanCache {
 public:
  explicit PlanCache(PlanCacheConfig config = {});

  /// Starts a new epoch: entries inserted from now on are reported as
  /// unstable (`*stable == false`) until the next BeginEpoch call.
  void BeginEpoch();

  /// Lookups: `stable` (optional) is set to true iff the returned entry
  /// was inserted before the current epoch; false on a miss or on an
  /// entry inserted within the current epoch.
  std::optional<CachedVerdict> LookupVerdict(const PlanKey& key,
                                             bool* stable = nullptr);
  void InsertVerdict(const PlanKey& key, CachedVerdict verdict);

  std::optional<analysis::AnalysisReport> LookupAnalysis(
      const PlanKey& key, bool* stable = nullptr);
  void InsertAnalysis(const PlanKey& key, analysis::AnalysisReport report);

  /// Core entries are keyed by the original query's canonical hash alone.
  std::optional<UnionQuery> LookupCoreUcq(std::uint64_t query_hash,
                                          bool* stable = nullptr);
  void InsertCoreUcq(std::uint64_t query_hash, UnionQuery core);

  std::optional<CachedEval> LookupEval(const PlanKey& key,
                                       bool* stable = nullptr);
  void InsertEval(const PlanKey& key, CachedEval eval);

  /// The owned program-artifact layer. Handed to the router as
  /// `RouterOptions::artifact_cache`; epochs advance in lockstep with the
  /// verdict layers (BeginEpoch/Clear fan out to it).
  ProgramArtifactCache& artifacts() { return artifacts_; }

  /// Counters summed over the four entry kinds (the artifact layer reports
  /// separately via `artifacts().stats()` — its entries are shared frozen
  /// structures, not per-pair values, so mixing the totals would skew
  /// hit-rate readings).
  PlanCacheStats stats() const;

  /// Drops every entry (counters keep accumulating; drops do not count as
  /// evictions).
  void Clear();

 private:
  /// One LRU shard: recency list of (key, value, insertion epoch) with an
  /// index into it.
  template <typename V>
  struct Shard {
    struct Entry {
      PlanKey key;
      V value;
      std::uint64_t epoch = 0;  // epoch of the entry's FIRST insertion
    };

    mutable std::mutex mu;
    std::size_t capacity = 0;
    std::list<Entry> order;  // front = most recent
    std::unordered_map<PlanKey, typename std::list<Entry>::iterator,
                       PairHash<std::uint64_t, std::uint64_t>>
        index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;

    std::optional<V> Lookup(const PlanKey& key, std::uint64_t current_epoch,
                            bool* stable);
    /// Returns the number of entries evicted by this insert (0 or 1).
    std::uint64_t Insert(const PlanKey& key, V value, std::uint64_t epoch);
    void Collect(PlanCacheStats* out) const;
    void Clear();
  };

  void Publish(const char* kind, bool hit) const;
  void PublishInsert(const char* kind, std::uint64_t evicted) const;

  PlanCacheConfig config_;
  std::atomic<std::uint64_t> epoch_{0};
  Shard<CachedVerdict> verdicts_;
  Shard<analysis::AnalysisReport> reports_;
  Shard<UnionQuery> cores_;
  Shard<CachedEval> evals_;
  ProgramArtifactCache artifacts_;
};

}  // namespace server
}  // namespace qcont

#endif  // QCONT_SERVER_PLAN_CACHE_H_

#ifndef QCONT_SERVER_JSON_H_
#define QCONT_SERVER_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/status.h"

namespace qcont {
namespace server {

/// A parsed JSON value. Minimal by design: the server's wire format is one
/// flat object per line, so this covers exactly RFC 8259 minus surrogate
/// pairs in \u escapes (non-BMP escapes are rejected; raw UTF-8 passes
/// through untouched). Numbers are kept as doubles, which is exact for the
/// integral fields the protocol uses (ids, deadlines, capacities).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue Bool(bool b);
  static JsonValue Number(double d);
  static JsonValue String(std::string s);
  static JsonValue Array(std::vector<JsonValue> items);
  static JsonValue Object(std::map<std::string, JsonValue> members);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return array_; }
  const std::map<std::string, JsonValue>& object_members() const {
    return object_;
  }

  /// Member lookup on an object; null pointer when absent or not an object.
  const JsonValue* Get(const std::string& key) const;

  /// Serializes back to compact JSON (keys in map order).
  std::string Dump() const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses exactly one JSON value from `text` (surrounding whitespace
/// allowed, trailing garbage is an error).
Result<JsonValue> ParseJson(const std::string& text);

/// Escapes `s` for embedding in a JSON string literal (quotes not added).
std::string JsonEscape(const std::string& s);

}  // namespace server
}  // namespace qcont

#endif  // QCONT_SERVER_JSON_H_

#ifndef QCONT_ANALYSIS_PROGRAM_ANALYSIS_H_
#define QCONT_ANALYSIS_PROGRAM_ANALYSIS_H_

#include <string>
#include <vector>

#include "datalog/program.h"

namespace qcont {
namespace analysis {

/// Stratification-style layering of a (positive) Datalog program, computed
/// from the SCC condensation of the predicate dependency graph. Positive
/// programs are always stratifiable; the interesting outputs are the layer
/// structure and which layers are recursive.
struct StratificationInfo {
  /// Number of strata: the longest callee-before-caller chain of
  /// intensional SCCs (extensional predicates are stratum 0).
  int num_strata = 0;
  /// Stratum of each rule (by its head predicate), parallel to rules().
  std::vector<int> stratum_of_rule;
  /// Number of SCCs in the condensation (intensional + extensional).
  int num_sccs = 0;
  /// Number of SCCs that are recursive (on a cycle or self-loop).
  int num_recursive_sccs = 0;
};

/// Magic-set-style relevance from the goal: adornments (binding patterns of
/// 'b'/'f') are propagated from the goal through rule bodies left-to-right
/// with sideways information passing, and a rule is relevant iff its head
/// predicate is reached under some adornment.
struct RelevanceInfo {
  /// Adorned intensional predicates actually reachable, e.g. "p^bf".
  std::vector<std::string> adorned_predicates;
  /// relevant_rule[i]: rule i's head is reached under some adornment.
  std::vector<bool> relevant_rule;
  int num_relevant_rules = 0;
};

/// Size metrics of the recursive part of the program — the quantities that
/// drive the containment engines' bounds (nv(Π), branching degree of
/// expansion trees).
struct RecursionWidthInfo {
  int num_recursive_rules = 0;   // rules whose head lies on a cycle
  int num_recursive_predicates = 0;
  /// Max distinct variables over the *recursive* rules (0 if none).
  int max_recursive_rule_vars = 0;
  /// Max intensional atoms in any body (expansion-tree branching degree).
  int max_intensional_atoms = 0;
};

/// Membership in the statically recognizable Datalog fragments whose
/// containment problems Bourhis-Krötzsch-Rudolph (arXiv 1406.7801) pin
/// down: monadic, guarded, and frontier-guarded Datalog.
struct FragmentInfo {
  bool linear = false;
  bool monadic = false;
  /// Every rule has an extensional body atom containing all body variables.
  bool guarded = false;
  /// Every rule has an extensional body atom containing all head
  /// (frontier) variables. Implied by guarded (for safe rules).
  bool frontier_guarded = false;

  /// "monadic, frontier-guarded" etc.; "none" when no fragment applies.
  std::string Describe() const;
};

/// The full structural analysis of one program; each part is emitted as its
/// own QC2xx info diagnostic by AnalyzeProgram and consumed (via
/// AnalysisReport) by the engine router.
struct ProgramAnalysis {
  StratificationInfo stratification;
  RelevanceInfo relevance;
  RecursionWidthInfo recursion;
  FragmentInfo fragment;
};

/// Runs all four analyses. The program is assumed to pass the error passes
/// (safe, arity-consistent, intensional goal); on malformed input the
/// results are best-effort rather than meaningful.
ProgramAnalysis AnalyzeProgramStructure(const DatalogProgram& program);

}  // namespace analysis
}  // namespace qcont

#endif  // QCONT_ANALYSIS_PROGRAM_ANALYSIS_H_

#include "analysis/diagnostic.h"

namespace qcont {
namespace analysis {

const char* DiagCodeId(DiagCode code) {
  switch (code) {
    case DiagCode::kEmptyInput: return "QC001";
    case DiagCode::kUnsafeRule: return "QC002";
    case DiagCode::kConstant: return "QC003";
    case DiagCode::kArityMismatch: return "QC004";
    case DiagCode::kGoalNotIntensional: return "QC005";
    case DiagCode::kInvalidHead: return "QC006";
    case DiagCode::kUnionArityMismatch: return "QC007";
    case DiagCode::kIntensionalInQuery: return "QC008";
    case DiagCode::kNonBinarySchema: return "QC009";
    case DiagCode::kUnreachablePredicate: return "QC101";
    case DiagCode::kSingletonVariable: return "QC102";
    case DiagCode::kCartesianProduct: return "QC103";
    case DiagCode::kDuplicateRule: return "QC104";
    case DiagCode::kDuplicateAtom: return "QC105";
    case DiagCode::kEmptyRegexLanguage: return "QC106";
    case DiagCode::kProgramFragment: return "QC201";
    case DiagCode::kQueryTractability: return "QC202";
    case DiagCode::kRpqTractability: return "QC203";
    case DiagCode::kStratification: return "QC204";
    case DiagCode::kGoalRelevance: return "QC205";
    case DiagCode::kRecursionWidth: return "QC206";
    case DiagCode::kDecidableFragment: return "QC207";
  }
  return "QC???";
}

Severity DiagSeverity(DiagCode code) {
  switch (code) {
    case DiagCode::kEmptyInput:
    case DiagCode::kUnsafeRule:
    case DiagCode::kConstant:
    case DiagCode::kArityMismatch:
    case DiagCode::kGoalNotIntensional:
    case DiagCode::kInvalidHead:
    case DiagCode::kUnionArityMismatch:
    case DiagCode::kIntensionalInQuery:
    case DiagCode::kNonBinarySchema:
      return Severity::kError;
    case DiagCode::kUnreachablePredicate:
    case DiagCode::kSingletonVariable:
    case DiagCode::kCartesianProduct:
    case DiagCode::kDuplicateRule:
    case DiagCode::kDuplicateAtom:
    case DiagCode::kEmptyRegexLanguage:
      return Severity::kWarning;
    case DiagCode::kProgramFragment:
    case DiagCode::kQueryTractability:
    case DiagCode::kRpqTractability:
    case DiagCode::kStratification:
    case DiagCode::kGoalRelevance:
    case DiagCode::kRecursionWidth:
    case DiagCode::kDecidableFragment:
      return Severity::kInfo;
  }
  return Severity::kError;
}

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kInfo: return "info";
  }
  return "error";
}

std::string FormatDiagnostic(const Diagnostic& d) {
  std::string out = std::string(DiagCodeId(d.code)) + " " +
                    SeverityName(d.severity()) + ": " + d.message;
  if (d.subject != Subject::kInput && d.index >= 0) {
    out += " (";
    out += d.subject == Subject::kRule ? "rule " : "disjunct ";
    out += std::to_string(d.index);
    if (d.line > 0) out += ", line " + std::to_string(d.line);
    out += ")";
  } else if (d.line > 0) {
    out += " (line " + std::to_string(d.line) + ")";
  }
  return out;
}

bool HasErrors(const std::vector<Diagnostic>& diagnostics) {
  return CountSeverity(diagnostics, Severity::kError) > 0;
}

int CountSeverity(const std::vector<Diagnostic>& diagnostics,
                  Severity severity) {
  int count = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity() == severity) ++count;
  }
  return count;
}

Status FirstError(const std::vector<Diagnostic>& diagnostics) {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity() == Severity::kError) {
      return InvalidArgumentError(d.message + " [" + DiagCodeId(d.code) + "]");
    }
  }
  return Status::Ok();
}

}  // namespace analysis
}  // namespace qcont

#include "analysis/analyzer.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <string>

#include "analysis/program_analysis.h"
#include "datalog/predicate_graph.h"
#include "structure/classify.h"

namespace qcont {
namespace analysis {

namespace {

int LineOf(const AnalysisOptions& options, int index) {
  return (index >= 0 && index < static_cast<int>(options.rule_lines.size()))
             ? options.rule_lines[index]
             : 0;
}

void Emit(std::vector<Diagnostic>* out, const AnalysisOptions& options,
          DiagCode code, Subject subject, int index, std::string message) {
  out->push_back(Diagnostic{code, std::move(message), subject, index,
                            LineOf(options, index)});
}

// Tracks the arity of each predicate across one input and reports the
// first inconsistent use of each predicate (not every later use, to keep
// the output readable).
class ArityChecker {
 public:
  // Returns false (and remembers the conflict) when `atom` uses its
  // predicate at an arity different from an earlier use.
  bool Observe(const Atom& atom) {
    auto [it, inserted] = arities_.emplace(atom.predicate(), atom.arity());
    if (!inserted && it->second != atom.arity()) {
      // Complain once per predicate.
      return !reported_.insert(atom.predicate()).second;
    }
    return true;
  }

  std::size_t ExpectedArity(const std::string& predicate) const {
    return arities_.at(predicate);
  }

 private:
  std::map<std::string, std::size_t> arities_;
  std::set<std::string> reported_;
};

// Variables occurring exactly once in the given atoms + extra terms,
// skipping names that start with '_' (the conventional "intentionally
// unused" marker, as in Prolog singleton warnings).
std::vector<std::string> SingletonVariables(const std::vector<Atom>& atoms,
                                            const std::vector<Term>& extra) {
  std::map<std::string, int> counts;
  std::vector<std::string> order;
  auto count = [&](const Term& t) {
    if (!t.is_variable()) return;
    if (++counts[t.name()] == 1) order.push_back(t.name());
  };
  for (const Atom& a : atoms) {
    for (const Term& t : a.terms()) count(t);
  }
  for (const Term& t : extra) count(t);
  std::vector<std::string> out;
  for (const std::string& name : order) {
    if (counts[name] == 1 && !name.empty() && name[0] != '_') {
      out.push_back(name);
    }
  }
  return out;
}

// Number of variable-connected components of the atom list; atoms without
// variables are their own component. 0 for an empty list. Components that
// contain a free (head) variable are merged into one: a body split into
// parts that each feed the answer is an intentional product of answer
// dimensions, not an accidental cross join, so only parts disjoint from
// the head (or multiple fully-existential parts) count separately.
int ConnectedComponents(const std::vector<Atom>& atoms,
                        const std::vector<Term>& free_terms) {
  const int n = static_cast<int>(atoms.size());
  std::vector<int> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](int a) {
    while (parent[a] != a) a = parent[a] = parent[parent[a]];
    return a;
  };
  std::map<std::string, int> first_atom_of_var;
  for (int i = 0; i < n; ++i) {
    for (const Term& t : atoms[i].terms()) {
      if (!t.is_variable()) continue;
      auto [it, inserted] = first_atom_of_var.emplace(t.name(), i);
      if (!inserted) parent[find(i)] = find(it->second);
    }
  }
  int head_root = -1;
  for (const Term& t : free_terms) {
    if (!t.is_variable()) continue;
    auto it = first_atom_of_var.find(t.name());
    if (it == first_atom_of_var.end()) continue;
    if (head_root < 0) {
      head_root = find(it->second);
    } else {
      parent[find(it->second)] = head_root;
    }
  }
  std::set<int> roots;
  for (int i = 0; i < n; ++i) roots.insert(find(i));
  return static_cast<int>(roots.size());
}

// The shared warning passes over one rule/disjunct body. `free_terms` are
// head terms (counted toward variable occurrences; a projection variable
// used once in the body and once in the head is not a singleton).
void BodyWarnings(std::vector<Diagnostic>* out, const AnalysisOptions& options,
                  Subject subject, int index, const std::vector<Atom>& atoms,
                  const std::vector<Term>& free_terms) {
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    for (std::size_t j = i + 1; j < atoms.size(); ++j) {
      if (atoms[i] == atoms[j]) {
        Emit(out, options, DiagCode::kDuplicateAtom, subject,
             static_cast<int>(index),
             "atom " + atoms[j].ToString() + " is repeated in the body");
        break;  // one report per duplicated earlier atom
      }
    }
  }
  std::vector<std::string> singletons = SingletonVariables(atoms, free_terms);
  if (!singletons.empty()) {
    std::string joined;
    for (const std::string& v : singletons) {
      if (!joined.empty()) joined += ", ";
      joined += "'" + v + "'";
    }
    Emit(out, options, DiagCode::kSingletonVariable, subject, index,
         "singleton variable(s) " + joined +
             " occur only once (prefix with '_' to silence)");
  }
  const int components = ConnectedComponents(atoms, free_terms);
  if (components >= 2) {
    Emit(out, options, DiagCode::kCartesianProduct, subject, index,
         "body is a cartesian product of " + std::to_string(components) +
             " variable-disjoint parts (ignoring connections through the "
             "head)");
  }
}

}  // namespace

std::vector<Diagnostic> AnalyzeProgram(const DatalogProgram& program,
                                       const AnalysisOptions& options) {
  std::vector<Diagnostic> out;
  if (program.rules().empty()) {
    Emit(&out, options, DiagCode::kEmptyInput, Subject::kInput, -1,
         "program has no rules");
    return out;
  }

  // Error passes: safety, constant-freeness, arity consistency, goal
  // sanity. Together these are exactly DatalogProgram::Validate().
  ArityChecker arities;
  for (std::size_t i = 0; i < program.rules().size(); ++i) {
    const Rule& rule = program.rules()[i];
    const int index = static_cast<int>(i);
    std::set<std::string> body_vars;
    bool constants_reported = false;
    auto check_terms = [&](const Atom& atom, bool is_body) {
      for (const Term& t : atom.terms()) {
        if (t.is_variable()) {
          if (is_body) body_vars.insert(t.name());
        } else if (!constants_reported) {
          constants_reported = true;
          Emit(&out, options, DiagCode::kConstant, Subject::kRule, index,
               "constants are not supported in rules: " + rule.ToString());
        }
      }
    };
    for (const Atom& atom : rule.body) check_terms(atom, /*is_body=*/true);
    check_terms(rule.head, /*is_body=*/false);
    for (const Term& t : rule.head.terms()) {
      if (t.is_variable() && !body_vars.count(t.name())) {
        Emit(&out, options, DiagCode::kUnsafeRule, Subject::kRule, index,
             "unsafe rule (head variable '" + t.name() +
                 "' not in body): " + rule.ToString());
      }
    }
    auto check_arity = [&](const Atom& atom) {
      if (!arities.Observe(atom)) {
        Emit(&out, options, DiagCode::kArityMismatch, Subject::kRule, index,
             "predicate '" + atom.predicate() +
                 "' used with inconsistent arities (" +
                 std::to_string(atom.arity()) + " here, " +
                 std::to_string(arities.ExpectedArity(atom.predicate())) +
                 " before)");
      }
    };
    check_arity(rule.head);
    for (const Atom& atom : rule.body) check_arity(atom);
  }
  const bool goal_defined = program.IsIntensional(program.goal_predicate());
  if (!goal_defined) {
    Emit(&out, options, DiagCode::kGoalNotIntensional, Subject::kInput, -1,
         "goal predicate '" + program.goal_predicate() +
             "' is not intensional (no rule defines it)");
  }

  if (options.style_warnings) {
    for (std::size_t i = 0; i < program.rules().size(); ++i) {
      const Rule& rule = program.rules()[i];
      BodyWarnings(&out, options, Subject::kRule, static_cast<int>(i),
                   rule.body, rule.head.terms());
      for (std::size_t j = 0; j < i; ++j) {
        const Rule& earlier = program.rules()[j];
        if (rule.head == earlier.head && rule.body == earlier.body) {
          Emit(&out, options, DiagCode::kDuplicateRule, Subject::kRule,
               static_cast<int>(i),
               "rule duplicates rule " + std::to_string(j) + ": " +
                   rule.ToString());
          break;
        }
      }
    }
    // Dead rules: heads not reachable from the goal in the predicate
    // dependency graph (one SCC-condensation reachability sweep).
    if (goal_defined) {
      PredicateGraph graph(program);
      const std::vector<bool> reachable = graph.ReachableFromGoal();
      for (std::size_t i = 0; i < program.rules().size(); ++i) {
        const std::string& head = program.rules()[i].head.predicate();
        const int node = graph.IndexOf(head);
        if (node >= 0 && !reachable[node]) {
          Emit(&out, options, DiagCode::kUnreachablePredicate, Subject::kRule,
               static_cast<int>(i),
               "rule is dead: predicate '" + head +
                   "' is unreachable from goal '" +
                   program.goal_predicate() + "'");
        }
      }
    }
  }

  if (options.tractability_advisor && !HasErrors(out)) {
    std::string fragment = program.IsRecursive() ? "recursive" : "nonrecursive";
    if (program.IsLinear()) fragment += ", linear";
    if (program.IsMonadic()) fragment += ", monadic";
    std::string msg =
        "program fragment: " + fragment + "; " +
        std::to_string(program.rules().size()) + " rule(s), " +
        std::to_string(program.IntensionalPredicates().size()) +
        " intensional / " +
        std::to_string(program.ExtensionalPredicates().size()) +
        " extensional predicate(s), max " +
        std::to_string(program.MaxRuleVariables()) + " variables per rule";
    if (!program.IsRecursive()) {
      msg += "; nonrecursive programs unfold into a finite UCQ, so "
             "containment reduces to UCQ containment";
    } else {
      msg += "; CONT(Datalog, UCQ) runs the general 2EXPTIME type engine "
             "(Theorem 2) unless the query is acyclic (ACk engine, "
             "Theorem 6)";
    }
    Emit(&out, options, DiagCode::kProgramFragment, Subject::kInput, -1, msg);

    // The deeper structural analyses: stratification, goal relevance,
    // recursion width, decidable-fragment membership (QC204-QC207).
    const ProgramAnalysis pa = AnalyzeProgramStructure(program);
    Emit(&out, options, DiagCode::kStratification, Subject::kInput, -1,
         "stratification: " + std::to_string(pa.stratification.num_strata) +
             " stratum/strata over " +
             std::to_string(pa.stratification.num_sccs) +
             " SCC(s) of the predicate dependency graph, " +
             std::to_string(pa.stratification.num_recursive_sccs) +
             " recursive SCC(s)");
    {
      std::string joined;
      for (const std::string& a : pa.relevance.adorned_predicates) {
        if (!joined.empty()) joined += ", ";
        joined += a;
      }
      Emit(&out, options, DiagCode::kGoalRelevance, Subject::kInput, -1,
           "magic-set relevance: " +
               std::to_string(pa.relevance.num_relevant_rules) + " of " +
               std::to_string(program.rules().size()) +
               " rule(s) relevant to goal '" + program.goal_predicate() +
               "'; adorned predicate(s): " +
               (joined.empty() ? "none" : joined));
      // Rules the adornment sweep never reaches get a precise per-rule
      // pointer (they are also QC101 dead rules when unreachable outright).
      for (std::size_t i = 0; i < pa.relevance.relevant_rule.size(); ++i) {
        if (!pa.relevance.relevant_rule[i]) {
          Emit(&out, options, DiagCode::kGoalRelevance, Subject::kRule,
               static_cast<int>(i),
               "rule is irrelevant to the goal under every reachable "
               "adornment");
        }
      }
    }
    Emit(&out, options, DiagCode::kRecursionWidth, Subject::kInput, -1,
         "recursion width: " +
             std::to_string(pa.recursion.num_recursive_rules) +
             " recursive rule(s) over " +
             std::to_string(pa.recursion.num_recursive_predicates) +
             " recursive predicate(s), max " +
             std::to_string(pa.recursion.max_recursive_rule_vars) +
             " variable(s) per recursive rule, expansion branching degree " +
             std::to_string(pa.recursion.max_intensional_atoms));
    Emit(&out, options, DiagCode::kDecidableFragment, Subject::kInput, -1,
         "decidable fragments (Bourhis-Krotzsch-Rudolph): " +
             pa.fragment.Describe());
  }
  return out;
}

std::vector<Diagnostic> AnalyzeUcq(const UnionQuery& ucq,
                                   const AnalysisOptions& options) {
  std::vector<Diagnostic> out;
  if (ucq.disjuncts().empty()) {
    Emit(&out, options, DiagCode::kEmptyInput, Subject::kInput, -1,
         "UCQ has no disjuncts");
    return out;
  }

  // Error passes: per-disjunct head safety and union-wide arity
  // consistency — exactly UnionQuery::Validate().
  ArityChecker arities;
  for (std::size_t i = 0; i < ucq.disjuncts().size(); ++i) {
    const ConjunctiveQuery& cq = ucq.disjuncts()[i];
    const int index = static_cast<int>(i);
    std::set<std::string> body_vars;
    for (const Atom& atom : cq.atoms()) {
      if (!arities.Observe(atom)) {
        Emit(&out, options, DiagCode::kArityMismatch, Subject::kDisjunct,
             index,
             "predicate '" + atom.predicate() +
                 "' used with inconsistent arities");
      }
      for (const Term& t : atom.terms()) {
        if (t.is_variable()) body_vars.insert(t.name());
      }
    }
    for (const Term& t : cq.head()) {
      if (!t.is_variable()) {
        Emit(&out, options, DiagCode::kInvalidHead, Subject::kDisjunct, index,
             "head term " + t.ToString() + " is not a variable");
      } else if (!body_vars.count(t.name())) {
        Emit(&out, options, DiagCode::kInvalidHead, Subject::kDisjunct, index,
             "free variable '" + t.name() + "' does not occur in the body");
      }
    }
    if (cq.arity() != ucq.disjuncts().front().arity()) {
      Emit(&out, options, DiagCode::kUnionArityMismatch, Subject::kDisjunct,
           index,
           "disjunct has arity " + std::to_string(cq.arity()) +
               " but the union has arity " +
               std::to_string(ucq.disjuncts().front().arity()));
    }
  }

  if (options.style_warnings) {
    for (std::size_t i = 0; i < ucq.disjuncts().size(); ++i) {
      const ConjunctiveQuery& cq = ucq.disjuncts()[i];
      BodyWarnings(&out, options, Subject::kDisjunct, static_cast<int>(i),
                   cq.atoms(), cq.head());
      for (std::size_t j = 0; j < i; ++j) {
        const ConjunctiveQuery& earlier = ucq.disjuncts()[j];
        if (cq.head() == earlier.head() && cq.atoms() == earlier.atoms()) {
          Emit(&out, options, DiagCode::kDuplicateRule, Subject::kDisjunct,
               static_cast<int>(i),
               "disjunct duplicates disjunct " + std::to_string(j));
          break;
        }
      }
    }
  }

  if (options.tractability_advisor && !HasErrors(out)) {
    auto classification = ClassifyUcq(ucq);
    if (classification.ok()) {
      std::string msg;
      if (classification->acyclic) {
        auto level = AckLevel(ucq);
        const int k = level.ok() ? *level : classification->max_shared_vars;
        msg = "acyclic UCQ in AC" + std::to_string(k) + " (treewidth " +
              std::string(classification->treewidth_exact ? "" : "<= ") +
              std::to_string(classification->treewidth) +
              ") — route: single-exponential ACk engine (Theorem 6, "
              "EXPTIME for fixed k)";
      } else {
        msg = "cyclic UCQ (treewidth " +
              std::string(classification->treewidth_exact ? "" : "<= ") +
              std::to_string(classification->treewidth) +
              ") — route: general type engine (Theorem 2, 2EXPTIME)";
      }
      Emit(&out, options, DiagCode::kQueryTractability, Subject::kInput, -1,
           msg);
    }
  }
  return out;
}

std::vector<Diagnostic> AnalyzeUC2rpq(const UC2rpq& query,
                                      const AnalysisOptions& options) {
  std::vector<Diagnostic> out;
  if (query.disjuncts().empty()) {
    Emit(&out, options, DiagCode::kEmptyInput, Subject::kInput, -1,
         "UC2RPQ has no disjuncts");
    return out;
  }

  for (std::size_t i = 0; i < query.disjuncts().size(); ++i) {
    const C2rpq& cq = query.disjuncts()[i];
    const int index = static_cast<int>(i);
    if (cq.atoms().empty()) {
      Emit(&out, options, DiagCode::kEmptyInput, Subject::kDisjunct, index,
           "disjunct has no atoms");
      continue;
    }
    std::set<std::string> vars;
    for (const RpqAtom& atom : cq.atoms()) {
      for (const Term* t : {&atom.x, &atom.y}) {
        if (t->is_variable()) {
          vars.insert(t->name());
        } else {
          Emit(&out, options, DiagCode::kInvalidHead, Subject::kDisjunct,
               index,
               "endpoint " + t->ToString() + " of [" + atom.pattern +
                   "] is not a variable");
        }
      }
    }
    for (const Term& t : cq.head()) {
      if (!t.is_variable() || !vars.count(t.name())) {
        Emit(&out, options, DiagCode::kInvalidHead, Subject::kDisjunct, index,
             "free variable " + t.ToString() +
                 " does not occur in any atom");
      }
    }
    if (cq.arity() != query.disjuncts().front().arity()) {
      Emit(&out, options, DiagCode::kUnionArityMismatch, Subject::kDisjunct,
           index,
           "disjunct has arity " + std::to_string(cq.arity()) +
               " but the union has arity " +
               std::to_string(query.disjuncts().front().arity()));
    }
    if (options.style_warnings) {
      for (const RpqAtom& atom : cq.atoms()) {
        if (!atom.nfa.IsLanguageNonempty()) {
          Emit(&out, options, DiagCode::kEmptyRegexLanguage,
               Subject::kDisjunct, index,
               "atom [" + atom.pattern + "](" + atom.x.ToString() + "," +
                   atom.y.ToString() +
                   ") denotes the empty language; the disjunct can never "
                   "match");
        }
      }
      BodyWarnings(&out, options, Subject::kDisjunct, index,
                   cq.UnderlyingCq().atoms(), cq.head());
      auto same_atom = [](const RpqAtom& a, const RpqAtom& b) {
        return a.pattern == b.pattern && a.x == b.x && a.y == b.y;
      };
      for (std::size_t a = 0; a < cq.atoms().size(); ++a) {
        for (std::size_t b = a + 1; b < cq.atoms().size(); ++b) {
          if (same_atom(cq.atoms()[a], cq.atoms()[b])) {
            Emit(&out, options, DiagCode::kDuplicateAtom, Subject::kDisjunct,
                 index,
                 "atom [" + cq.atoms()[b].pattern +
                     "] is repeated with the same endpoints");
            break;
          }
        }
      }
      for (std::size_t j = 0; j < i; ++j) {
        const C2rpq& earlier = query.disjuncts()[j];
        if (cq.head() != earlier.head() ||
            cq.atoms().size() != earlier.atoms().size()) {
          continue;
        }
        bool equal = true;
        for (std::size_t a = 0; a < cq.atoms().size(); ++a) {
          if (!same_atom(cq.atoms()[a], earlier.atoms()[a])) {
            equal = false;
            break;
          }
        }
        if (equal) {
          Emit(&out, options, DiagCode::kDuplicateRule, Subject::kDisjunct,
               index, "disjunct duplicates disjunct " + std::to_string(j));
          break;
        }
      }
    }
  }

  if (options.tractability_advisor && !HasErrors(out)) {
    auto acyclic = IsAcyclicUC2rpq(query);
    if (acyclic.ok()) {
      std::string msg;
      if (*acyclic) {
        auto level = AcrkLevel(query);
        msg = "acyclic UC2RPQ in ACR" +
              (level.ok() ? std::to_string(*level) : std::string("?")) +
              " — route: single-exponential ACRk engine (Theorem 9, EXPTIME "
              "for fixed k)";
      } else {
        msg = "cyclic UC2RPQ — route: bounded refutation search (sound but "
              "may report unknown; the paper's exact engines need "
              "acyclicity)";
      }
      Emit(&out, options, DiagCode::kRpqTractability, Subject::kInput, -1,
           msg);
    }
  }
  return out;
}

std::vector<Diagnostic> CheckContainmentPair(const DatalogProgram& program,
                                             const UnionQuery& ucq) {
  AnalysisOptions options;
  std::vector<Diagnostic> out;
  if (static_cast<int>(ucq.arity()) != program.GoalArity()) {
    Emit(&out, options, DiagCode::kUnionArityMismatch, Subject::kInput, -1,
         "UCQ arity " + std::to_string(ucq.arity()) +
             " differs from goal arity " +
             std::to_string(program.GoalArity()));
  }
  std::set<std::string> reported_intensional;
  std::set<std::string> reported_arity;
  for (std::size_t i = 0; i < ucq.disjuncts().size(); ++i) {
    const ConjunctiveQuery& cq = ucq.disjuncts()[i];
    const int index = static_cast<int>(i);
    bool constants_reported = false;
    for (const Atom& atom : cq.atoms()) {
      if (program.IsIntensional(atom.predicate()) &&
          reported_intensional.insert(atom.predicate()).second) {
        Emit(&out, options, DiagCode::kIntensionalInQuery, Subject::kDisjunct,
             index,
             "the UCQ mentions intensional predicate '" + atom.predicate() +
                 "'; both queries must be over the extensional schema");
      }
      const int program_arity = program.ArityOf(atom.predicate());
      if (program_arity != DatalogProgram::kMissingArity &&
          program_arity != static_cast<int>(atom.arity()) &&
          reported_arity.insert(atom.predicate()).second) {
        Emit(&out, options, DiagCode::kArityMismatch, Subject::kDisjunct,
             index,
             "predicate '" + atom.predicate() + "' has arity " +
                 std::to_string(program_arity) + " in the program but " +
                 std::to_string(atom.arity()) + " in the query");
      }
      for (const Term& t : atom.terms()) {
        if (!t.is_variable() && !constants_reported) {
          constants_reported = true;
          Emit(&out, options, DiagCode::kConstant, Subject::kDisjunct, index,
               "the containment engines require constant-free queries");
        }
      }
    }
  }
  return out;
}

std::vector<Diagnostic> CheckContainmentPair(const DatalogProgram& program,
                                             const UC2rpq& gamma) {
  AnalysisOptions options;
  std::vector<Diagnostic> out;
  if (static_cast<int>(gamma.arity()) != program.GoalArity()) {
    Emit(&out, options, DiagCode::kUnionArityMismatch, Subject::kInput, -1,
         "UC2RPQ arity " + std::to_string(gamma.arity()) +
             " differs from goal arity " +
             std::to_string(program.GoalArity()));
  }
  std::set<std::string> reported;
  for (std::size_t i = 0; i < program.rules().size(); ++i) {
    for (const Atom& atom : program.rules()[i].body) {
      if (!program.IsIntensional(atom.predicate()) && atom.arity() != 2 &&
          reported.insert(atom.predicate()).second) {
        Emit(&out, options, DiagCode::kNonBinarySchema, Subject::kRule,
             static_cast<int>(i),
             "graph-database containment requires a binary extensional "
             "schema; predicate '" +
                 atom.predicate() + "' has arity " +
                 std::to_string(atom.arity()));
      }
    }
  }
  return out;
}

}  // namespace analysis
}  // namespace qcont

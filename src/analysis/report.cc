#include "analysis/report.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "base/hash.h"
#include "structure/classify.h"
#include "structure/decomposition.h"
#include "structure/graph.h"
#include "structure/join_tree.h"

namespace qcont {
namespace analysis {

namespace {

// Streams the alpha-renamed form byte-by-byte into an FNV-1a state. The
// hash is the per-call cache-consult cost (the report itself is cached),
// so no intermediate string is ever materialized. Text fields are
// NUL-terminated inside the stream and structural markers are distinct
// bytes, so fields cannot run into each other.
struct CanonicalHasher {
  std::uint64_t state = 14695981039346656037ULL;

  void Byte(unsigned char c) {
    state ^= c;
    state *= 1099511628211ULL;
  }
  void Text(const std::string& s) {
    for (char c : s) Byte(static_cast<unsigned char>(c));
    Byte(0);
  }
  void Number(int v) {
    for (int shift = 0; shift < 32; shift += 8) {
      Byte(static_cast<unsigned char>((static_cast<unsigned>(v) >> shift)));
    }
  }
  std::uint64_t Finish() const { return Mix64(state); }
};

// First-occurrence variable numbering. Keys are 64-bit digests of the
// variable names rather than the strings themselves: the canonical hash is
// already a lossy 64-bit digest, so folding the (vanishingly unlikely)
// per-name digest collisions into it changes nothing structurally, and it
// keeps the per-call cache-consult cost free of string-keyed map nodes.
// One instance is reused across disjuncts/rules (clear() keeps buckets).
struct NameTable {
  std::unordered_map<std::uint64_t, int> ids;

  int IdOf(const std::string& name) {
    auto [it, inserted] = ids.emplace(std::hash<std::string>{}(name),
                                      static_cast<int>(ids.size()));
    return it->second;
  }
};

// Hashes `atom` with variables renamed to dense ids in first-occurrence
// order (tracked in `names`); constants pass through by name.
void HashCanonicalAtom(const Atom& atom, NameTable* names,
                       CanonicalHasher* h) {
  h->Byte('(');
  h->Text(atom.predicate());
  for (const Term& t : atom.terms()) {
    if (t.is_variable()) {
      h->Byte('v');
      h->Number(names->IdOf(t.name()));
    } else {
      h->Byte('\'');
      h->Text(t.name());
    }
  }
  h->Byte(')');
}

}  // namespace

std::uint64_t CanonicalQueryHash(const UnionQuery& ucq) {
  CanonicalHasher h;
  NameTable names;
  for (const ConjunctiveQuery& cq : ucq.disjuncts()) {
    names.ids.clear();
    h.Byte('[');
    for (const Term& t : cq.head()) {
      h.Byte('v');
      h.Number(names.IdOf(t.name()));
    }
    h.Byte('-');
    for (const Atom& atom : cq.atoms()) {
      HashCanonicalAtom(atom, &names, &h);
    }
    h.Byte(']');
  }
  return h.Finish();
}

std::uint64_t CanonicalProgramHash(const DatalogProgram& program) {
  CanonicalHasher h;
  NameTable names;
  h.Byte('g');
  h.Text(program.goal_predicate());
  for (const Rule& rule : program.rules()) {
    names.ids.clear();
    HashCanonicalAtom(rule.head, &names, &h);
    h.Byte(':');
    for (const Atom& atom : rule.body) {
      HashCanonicalAtom(atom, &names, &h);
    }
    h.Byte(';');
  }
  return h.Finish();
}

std::uint64_t CanonicalDatabaseHash(const Database& db) {
  // Per-fact FNV-1a digests combined with + : commutative, so the hash is
  // a function of the fact *set*. Facts are self-delimiting inside their
  // digest (Text() NUL-terminates), so fields cannot run into each other.
  std::uint64_t combined = 0;
  for (const std::string& relation : db.Relations()) {
    for (const Tuple& tuple : db.Facts(relation)) {
      CanonicalHasher h;
      h.Text(relation);
      for (const Value& v : tuple) h.Text(v);
      combined += h.Finish();
    }
  }
  return Mix64(combined);
}

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kYannakakis: return "yannakakis";
    case EngineKind::kDecompDp: return "decomp-dp";
    case EngineKind::kGenericHomSearch: return "generic-hom-search";
    case EngineKind::kAckEngine: return "ack";
    case EngineKind::kTypeEngine: return "type-engine";
  }
  return "unknown";
}

EngineKind ChooseEngine(const AnalysisReport& report, RoutingGoal goal,
                        const RoutingOptions& options) {
  if (goal == RoutingGoal::kContainment) {
    return report.acyclic ? EngineKind::kAckEngine : EngineKind::kTypeEngine;
  }
  if (report.acyclic) return EngineKind::kYannakakis;
  if (report.treewidth <= options.decomp_width_threshold) {
    return EngineKind::kDecompDp;
  }
  return EngineKind::kGenericHomSearch;
}

namespace {

AnalysisReport BuildReport(const DatalogProgram* program,
                           const UnionQuery& ucq,
                           const RoutingOptions& options) {
  ObsSpan span(options.obs, "analysis/report", "analysis");
  AnalysisReport out;
  out.query_hash = CanonicalQueryHash(ucq);
  out.num_disjuncts = static_cast<int>(ucq.disjuncts().size());

  // UCQ structure, all through the certified decomposition module.
  out.acyclic = true;
  out.treewidth_exact = true;
  for (const ConjunctiveQuery& cq : ucq.disjuncts()) {
    out.acyclic = out.acyclic && IsAcyclic(cq);
    out.max_shared_vars = std::max(out.max_shared_vars, MaxSharedVariables(cq));
    UndirectedGraph gaifman = GaifmanGraph(cq);
    DecomposeOptions decompose;
    decompose.obs = options.obs;
    DecompositionCertificate tree = DecomposeGraph(gaifman, decompose);
    out.treewidth = std::max(out.treewidth, std::max(0, tree.claimed_width));
    out.treewidth_exact = out.treewidth_exact && tree.exact;
    DecompositionCertificate ghd =
        DecomposeHypergraph(CqHypergraph(cq), decompose);
    out.ghw = std::max(out.ghw, ghd.claimed_width);
  }
  if (out.acyclic) {
    auto level = AckLevel(ucq);
    out.ack_level = level.ok() ? *level : std::max(1, out.max_shared_vars);
  }

  if (program != nullptr) {
    out.has_program = true;
    out.program_hash = CanonicalProgramHash(*program);
    out.recursive = program->IsRecursive();
    out.program = AnalyzeProgramStructure(*program);
  }

  out.eval_engine = ChooseEngine(out, RoutingGoal::kEvaluate, options);
  out.containment_engine =
      ChooseEngine(out, RoutingGoal::kContainment, options);
  span.AddArg("disjuncts", static_cast<std::uint64_t>(out.num_disjuncts));
  span.AddArg("acyclic", out.acyclic ? 1 : 0);
  span.AddArg("treewidth", static_cast<std::uint64_t>(out.treewidth));
  return out;
}

struct AnalysisCache {
  std::mutex mu;
  std::unordered_map<std::pair<std::uint64_t, std::uint64_t>, AnalysisReport,
                     PairHash<std::uint64_t, std::uint64_t>>
      entries;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

AnalysisCache& Cache() {
  static AnalysisCache* cache = new AnalysisCache();
  return *cache;
}

AnalysisReport CachedReport(const DatalogProgram* program,
                            const UnionQuery& ucq,
                            const RoutingOptions& options) {
  if (!options.use_cache) return BuildReport(program, ucq, options);
  const std::pair<std::uint64_t, std::uint64_t> key = {
      program != nullptr ? CanonicalProgramHash(*program) : 0,
      CanonicalQueryHash(ucq)};
  AnalysisCache& cache = Cache();
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    auto it = cache.entries.find(key);
    if (it != cache.entries.end()) {
      ++cache.hits;
      ObsCount(options.obs, "analysis.cache_hits", 1);
      return it->second;
    }
  }
  AnalysisReport report = BuildReport(program, ucq, options);
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    ++cache.misses;
    cache.entries.emplace(key, report);
  }
  ObsCount(options.obs, "analysis.cache_misses", 1);
  return report;
}

}  // namespace

AnalysisReport AnalyzeForRouting(const UnionQuery& ucq,
                                 const RoutingOptions& options) {
  return CachedReport(nullptr, ucq, options);
}

AnalysisReport AnalyzeForRouting(const DatalogProgram& program,
                                 const UnionQuery& ucq,
                                 const RoutingOptions& options) {
  return CachedReport(&program, ucq, options);
}

AnalysisCacheStats GlobalAnalysisCacheStats() {
  AnalysisCache& cache = Cache();
  std::lock_guard<std::mutex> lock(cache.mu);
  return {cache.hits, cache.misses, cache.entries.size()};
}

void ClearGlobalAnalysisCache() {
  AnalysisCache& cache = Cache();
  std::lock_guard<std::mutex> lock(cache.mu);
  cache.entries.clear();
  cache.hits = 0;
  cache.misses = 0;
}

namespace {

std::string JsonBool(bool b) { return b ? "true" : "false"; }

std::string JsonHex(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string("\"") + buf + "\"";
}

}  // namespace

std::string AnalysisReport::ToJson() const {
  std::string out = "{";
  out += "\"schema_version\":" + std::to_string(kSchemaVersion) + ",";
  out += "\"query_hash\":" + JsonHex(query_hash) + ",";
  out += "\"program_hash\":" + JsonHex(program_hash) + ",";
  out += "\"ucq\":{";
  out += "\"disjuncts\":" + std::to_string(num_disjuncts) + ",";
  out += "\"acyclic\":" + JsonBool(acyclic) + ",";
  out += "\"ack_level\":" + std::to_string(ack_level) + ",";
  out += "\"treewidth\":" + std::to_string(treewidth) + ",";
  out += "\"treewidth_exact\":" + JsonBool(treewidth_exact) + ",";
  out += "\"ghw\":" + std::to_string(ghw) + ",";
  out += "\"max_shared_vars\":" + std::to_string(max_shared_vars);
  out += "},";
  out += "\"program\":{";
  out += "\"present\":" + JsonBool(has_program) + ",";
  out += "\"recursive\":" + JsonBool(recursive) + ",";
  out += "\"num_strata\":" +
         std::to_string(program.stratification.num_strata) + ",";
  out += "\"num_sccs\":" + std::to_string(program.stratification.num_sccs) +
         ",";
  out += "\"num_recursive_sccs\":" +
         std::to_string(program.stratification.num_recursive_sccs) + ",";
  out += "\"relevant_rules\":" +
         std::to_string(program.relevance.num_relevant_rules) + ",";
  out += "\"recursive_rules\":" +
         std::to_string(program.recursion.num_recursive_rules) + ",";
  out += "\"max_recursive_rule_vars\":" +
         std::to_string(program.recursion.max_recursive_rule_vars) + ",";
  out += "\"expansion_branching\":" +
         std::to_string(program.recursion.max_intensional_atoms) + ",";
  out += "\"linear\":" + JsonBool(program.fragment.linear) + ",";
  out += "\"monadic\":" + JsonBool(program.fragment.monadic) + ",";
  out += "\"guarded\":" + JsonBool(program.fragment.guarded) + ",";
  out += "\"frontier_guarded\":" +
         JsonBool(program.fragment.frontier_guarded);
  out += "},";
  out += "\"routing\":{";
  out += std::string("\"eval_engine\":\"") + EngineKindName(eval_engine) +
         "\",";
  out += std::string("\"containment_engine\":\"") +
         EngineKindName(containment_engine) + "\"";
  out += "}}";
  return out;
}

}  // namespace analysis
}  // namespace qcont

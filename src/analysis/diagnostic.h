#ifndef QCONT_ANALYSIS_DIAGNOSTIC_H_
#define QCONT_ANALYSIS_DIAGNOSTIC_H_

#include <string>
#include <vector>

#include "base/status.h"

namespace qcont {
namespace analysis {

/// Severity of a diagnostic. Errors make the input unusable for the
/// containment engines (Validate() fails); warnings flag suspicious but
/// legal constructs; info diagnostics report structural facts such as the
/// tractability class.
enum class Severity {
  kError,
  kWarning,
  kInfo,
};

/// Stable diagnostic codes. The QCxxx identifiers are part of the public
/// surface (printed by `qcont_cli lint`, matched by tests and downstream
/// tooling); never renumber an existing code. Errors are QC0xx, warnings
/// QC1xx, info QC2xx — see DESIGN.md for the full table.
enum class DiagCode {
  // --- Errors ---
  kEmptyInput,           // QC001: no rules / no disjuncts
  kUnsafeRule,           // QC002: head variable not bound in the body
  kConstant,             // QC003: constant where only variables are allowed
  kArityMismatch,        // QC004: predicate used with inconsistent arities
  kGoalNotIntensional,   // QC005: goal predicate has no defining rule
  kInvalidHead,          // QC006: head/endpoint term not a bound variable
  kUnionArityMismatch,   // QC007: disjunct or query/goal arities disagree
  kIntensionalInQuery,   // QC008: query mentions an intensional predicate
  kNonBinarySchema,      // QC009: graph containment needs a binary schema
  // --- Warnings ---
  kUnreachablePredicate, // QC101: rule head unreachable from the goal
  kSingletonVariable,    // QC102: variable occurs exactly once
  kCartesianProduct,     // QC103: body splits into variable-disjoint parts
  kDuplicateRule,        // QC104: rule/disjunct repeats an earlier one
  kDuplicateAtom,        // QC105: atom repeated within one body
  kEmptyRegexLanguage,   // QC106: regex atom denotes the empty language
  // --- Info ---
  kProgramFragment,      // QC201: Datalog fragment classification
  kQueryTractability,    // QC202: UCQ class + engine recommendation
  kRpqTractability,      // QC203: UC2RPQ class + engine recommendation
  kStratification,       // QC204: strata / SCC condensation summary
  kGoalRelevance,        // QC205: magic-set relevance from the goal
  kRecursionWidth,       // QC206: recursive-part size metrics
  kDecidableFragment,    // QC207: monadic/guarded/frontier-guarded membership
};

/// "QC001" etc. (stable).
const char* DiagCodeId(DiagCode code);

/// The severity a code always carries (codes never change severity).
Severity DiagSeverity(DiagCode code);

/// "error" / "warning" / "info".
const char* SeverityName(Severity severity);

/// What a diagnostic's `index` refers to.
enum class Subject {
  kInput,     // the whole program/query (index is -1)
  kRule,      // rule `index` of a Datalog program
  kDisjunct,  // disjunct `index` of a UCQ/UC2RPQ
};

/// One analyzer finding. `line` is the 1-based source line of the offending
/// rule/disjunct when the input was parsed from text (0 when constructed
/// programmatically).
struct Diagnostic {
  DiagCode code;
  std::string message;
  Subject subject = Subject::kInput;
  int index = -1;
  int line = 0;

  Severity severity() const { return DiagSeverity(code); }
};

/// "QC002 error: unsafe rule ... (rule 3, line 7)".
std::string FormatDiagnostic(const Diagnostic& d);

/// True iff some diagnostic has error severity.
bool HasErrors(const std::vector<Diagnostic>& diagnostics);

/// Counts diagnostics of the given severity.
int CountSeverity(const std::vector<Diagnostic>& diagnostics,
                  Severity severity);

/// The first error-severity diagnostic as an InvalidArgumentError, or Ok.
/// This is the bridge from analyzer output to the engines' Status surface.
Status FirstError(const std::vector<Diagnostic>& diagnostics);

}  // namespace analysis
}  // namespace qcont

#endif  // QCONT_ANALYSIS_DIAGNOSTIC_H_

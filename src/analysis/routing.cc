#include "analysis/routing.h"

#include <string>
#include <utility>

#include "structure/acyclic_eval.h"
#include "structure/decomp_eval.h"

namespace qcont {
namespace analysis {

namespace {

EngineKind ResolveEvalEngine(const ConjunctiveQuery& cq,
                             const RoutedEvalOptions& options) {
  switch (options.force) {
    case ForcedEvalEngine::kYannakakis:
      return EngineKind::kYannakakis;
    case ForcedEvalEngine::kDecompDp:
      return EngineKind::kDecompDp;
    case ForcedEvalEngine::kGenericHomSearch:
      return EngineKind::kGenericHomSearch;
    case ForcedEvalEngine::kAuto:
      break;
  }
  AnalysisReport report =
      AnalyzeForRouting(UnionQuery({cq}), options.routing);
  return ChooseEngine(report, RoutingGoal::kEvaluate, options.routing);
}

void CountRoute(const RoutingOptions& routing, EngineKind engine) {
  ObsCount(routing.obs,
           std::string("analysis.route.") + EngineKindName(engine), 1);
}

}  // namespace

Result<bool> RoutedSatisfiable(const ConjunctiveQuery& cq, const Database& db,
                               const Assignment& fixed,
                               const RoutedEvalOptions& options,
                               EngineKind* chosen) {
  const EngineKind engine = ResolveEvalEngine(cq, options);
  if (chosen != nullptr) *chosen = engine;
  CountRoute(options.routing, engine);
  ObsSpan span(options.routing.obs, "analysis/route", "analysis");
  span.AddArg("engine", static_cast<std::uint64_t>(engine));
  switch (engine) {
    case EngineKind::kYannakakis:
      return AcyclicSatisfiable(cq, db, fixed, nullptr, options.routing.obs);
    case EngineKind::kDecompDp:
      return BoundedWidthSatisfiable(cq, db, fixed, nullptr,
                                     options.routing.obs);
    default: {
      HomSearchOptions hom;
      hom.obs = options.routing.obs;
      return FindHomomorphism(cq, db, fixed, nullptr, hom).has_value();
    }
  }
}

Result<std::vector<Tuple>> RoutedEvaluateCq(const ConjunctiveQuery& cq,
                                            const Database& db,
                                            const RoutedEvalOptions& options,
                                            EngineKind* chosen) {
  EngineKind engine = ResolveEvalEngine(cq, options);
  // The DP answers satisfiability only; enumeration goes generic.
  if (engine == EngineKind::kDecompDp &&
      options.force == ForcedEvalEngine::kAuto) {
    engine = EngineKind::kGenericHomSearch;
  }
  if (chosen != nullptr) *chosen = engine;
  CountRoute(options.routing, engine);
  ObsSpan span(options.routing.obs, "analysis/route", "analysis");
  span.AddArg("engine", static_cast<std::uint64_t>(engine));
  switch (engine) {
    case EngineKind::kYannakakis:
      return EvaluateAcyclicCq(cq, db, nullptr, options.routing.obs);
    case EngineKind::kDecompDp:
      return InvalidArgumentError(
          "the decomposition DP cannot enumerate answers; force "
          "yannakakis or generic-hom-search");
    default: {
      HomSearchOptions hom;
      hom.obs = options.routing.obs;
      return EvaluateCq(cq, db, nullptr, hom);
    }
  }
}

}  // namespace analysis
}  // namespace qcont

#ifndef QCONT_ANALYSIS_ROUTING_H_
#define QCONT_ANALYSIS_ROUTING_H_

#include <vector>

#include "analysis/report.h"
#include "cq/database.h"
#include "cq/homomorphism.h"
#include "cq/query.h"

namespace qcont {
namespace analysis {

/// Force knob for the routed evaluation entry points; kAuto defers to
/// ChooseEngine over the (cached) analysis report. The forced settings
/// exist for the differential tests proving answer equality across engines
/// and for debugging — forcing an engine onto an input outside its class
/// (Yannakakis on a cyclic CQ) surfaces that engine's own error.
enum class ForcedEvalEngine {
  kAuto,
  kYannakakis,
  kDecompDp,
  kGenericHomSearch,
};

struct RoutedEvalOptions {
  RoutingOptions routing;
  ForcedEvalEngine force = ForcedEvalEngine::kAuto;
};

/// Analysis-driven satisfiability: Boolean "does cq have a homomorphism
/// into db extending `fixed`", dispatched by verified structure —
/// Yannakakis for acyclic queries, the decomposition DP for small verified
/// width, backtracking search otherwise. `chosen` (optional) reports the
/// engine used.
Result<bool> RoutedSatisfiable(const ConjunctiveQuery& cq, const Database& db,
                               const Assignment& fixed = {},
                               const RoutedEvalOptions& options = {},
                               EngineKind* chosen = nullptr);

/// Analysis-driven full evaluation (distinct head tuples). The
/// decomposition DP has no enumeration variant, so kDecompDp falls back to
/// the generic engine here; kAuto therefore only routes to Yannakakis or
/// the generic search.
Result<std::vector<Tuple>> RoutedEvaluateCq(const ConjunctiveQuery& cq,
                                            const Database& db,
                                            const RoutedEvalOptions& options = {},
                                            EngineKind* chosen = nullptr);

}  // namespace analysis
}  // namespace qcont

#endif  // QCONT_ANALYSIS_ROUTING_H_

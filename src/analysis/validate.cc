// DatalogProgram::Validate() is declared in datalog/program.h but defined
// here, in the analysis library: validation *is* the analyzer's error
// passes (safety, constant-freeness, arity consistency, goal sanity), so
// defining it on top of AnalyzeProgram guarantees the two can never
// disagree. The datalog library cannot host this definition itself without
// a dependency cycle (analysis already depends on datalog).

#include "analysis/analyzer.h"
#include "datalog/program.h"

namespace qcont {

Status DatalogProgram::Validate() const {
  analysis::AnalysisOptions options;
  options.style_warnings = false;
  options.tractability_advisor = false;
  return analysis::FirstError(analysis::AnalyzeProgram(*this, options));
}

}  // namespace qcont

#include "analysis/program_analysis.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "datalog/predicate_graph.h"

namespace qcont {
namespace analysis {

std::string FragmentInfo::Describe() const {
  std::string out;
  auto add = [&](const char* name) {
    if (!out.empty()) out += ", ";
    out += name;
  };
  if (linear) add("linear");
  if (monadic) add("monadic");
  if (guarded) add("guarded");
  if (frontier_guarded && !guarded) add("frontier-guarded");
  if (out.empty()) out = "none";
  return out;
}

namespace {

StratificationInfo Stratify(const DatalogProgram& program,
                            const PredicateGraph& graph) {
  StratificationInfo out;
  out.num_sccs = graph.num_sccs();
  // SCC ids are a reverse topological order (edges go to smaller ids), so a
  // single ascending sweep computes longest callee-chains bottom-up.
  std::vector<std::vector<int>> scc_succs(graph.num_sccs());
  std::vector<bool> scc_intensional(graph.num_sccs(), false);
  std::vector<bool> scc_recursive(graph.num_sccs(), false);
  for (int p = 0; p < graph.num_predicates(); ++p) {
    const int s = graph.SccOf(p);
    if (program.IsIntensional(graph.predicate_names()[p])) {
      scc_intensional[s] = true;
    }
    if (graph.IsRecursivePredicate(p)) scc_recursive[s] = true;
    for (int q : graph.SuccessorsOf(p)) {
      if (graph.SccOf(q) != s) scc_succs[s].push_back(graph.SccOf(q));
    }
  }
  for (bool r : scc_recursive) out.num_recursive_sccs += r ? 1 : 0;
  // stratum(S) = 1 + max stratum of callees for intensional SCCs;
  // extensional SCCs sit at stratum 0.
  std::vector<int> stratum(graph.num_sccs(), 0);
  for (int s = 0; s < graph.num_sccs(); ++s) {
    if (!scc_intensional[s]) continue;
    int below = 0;
    for (int t : scc_succs[s]) below = std::max(below, stratum[t]);
    stratum[s] = below + 1;
    out.num_strata = std::max(out.num_strata, stratum[s]);
  }
  out.stratum_of_rule.reserve(program.rules().size());
  for (const Rule& rule : program.rules()) {
    const int node = graph.IndexOf(rule.head.predicate());
    out.stratum_of_rule.push_back(node >= 0 ? stratum[graph.SccOf(node)] : 0);
  }
  return out;
}

// One adorned predicate: name plus a binding pattern over its arguments.
using Adornment = std::pair<std::string, std::string>;

std::string AdornGoal(const DatalogProgram& program) {
  // Containment freezes the goal tuple (the canonical database's head), so
  // the goal is called fully bound.
  const int arity = std::max(0, program.GoalArity());
  return std::string(static_cast<std::size_t>(arity), 'b');
}

RelevanceInfo Relevance(const DatalogProgram& program) {
  RelevanceInfo out;
  out.relevant_rule.assign(program.rules().size(), false);
  if (!program.IsIntensional(program.goal_predicate())) return out;

  std::set<Adornment> seen;
  std::vector<Adornment> worklist;
  auto push = [&](const std::string& pred, const std::string& pattern) {
    if (seen.insert({pred, pattern}).second) worklist.push_back({pred, pattern});
  };
  push(program.goal_predicate(), AdornGoal(program));
  while (!worklist.empty()) {
    auto [pred, pattern] = worklist.back();
    worklist.pop_back();
    for (int r : program.RulesFor(pred)) {
      out.relevant_rule[r] = true;
      const Rule& rule = program.rules()[r];
      // Bound variables: head positions adorned 'b', then sideways
      // information passing — each body atom binds its variables for the
      // atoms after it.
      std::set<std::string> bound;
      for (std::size_t i = 0;
           i < rule.head.terms().size() && i < pattern.size(); ++i) {
        if (pattern[i] == 'b' && rule.head.terms()[i].is_variable()) {
          bound.insert(rule.head.terms()[i].name());
        }
      }
      for (const Atom& atom : rule.body) {
        if (program.IsIntensional(atom.predicate())) {
          std::string adornment;
          adornment.reserve(atom.terms().size());
          for (const Term& t : atom.terms()) {
            adornment += (t.is_variable() && !bound.count(t.name())) ? 'f'
                                                                     : 'b';
          }
          push(atom.predicate(), adornment);
        }
        for (const Term& t : atom.terms()) {
          if (t.is_variable()) bound.insert(t.name());
        }
      }
    }
  }
  for (const Adornment& a : seen) {
    out.adorned_predicates.push_back(a.first + "^" + a.second);
  }
  std::sort(out.adorned_predicates.begin(), out.adorned_predicates.end());
  for (bool r : out.relevant_rule) out.num_relevant_rules += r ? 1 : 0;
  return out;
}

RecursionWidthInfo RecursionWidth(const DatalogProgram& program,
                                  const PredicateGraph& graph) {
  RecursionWidthInfo out;
  out.max_intensional_atoms = program.MaxIntensionalAtoms();
  std::set<std::string> recursive_preds;
  for (int p = 0; p < graph.num_predicates(); ++p) {
    if (graph.IsRecursivePredicate(p) &&
        program.IsIntensional(graph.predicate_names()[p])) {
      recursive_preds.insert(graph.predicate_names()[p]);
    }
  }
  out.num_recursive_predicates = static_cast<int>(recursive_preds.size());
  for (const Rule& rule : program.rules()) {
    if (!recursive_preds.count(rule.head.predicate())) continue;
    ++out.num_recursive_rules;
    out.max_recursive_rule_vars =
        std::max(out.max_recursive_rule_vars,
                 static_cast<int>(rule.Variables().size()));
  }
  return out;
}

FragmentInfo Fragments(const DatalogProgram& program) {
  FragmentInfo out;
  out.linear = program.IsLinear();
  out.monadic = program.IsMonadic();
  out.guarded = true;
  out.frontier_guarded = true;
  for (const Rule& rule : program.rules()) {
    std::set<std::string> body_vars;
    std::set<std::string> head_vars;
    for (const Atom& atom : rule.body) {
      for (const Term& t : atom.terms()) {
        if (t.is_variable()) body_vars.insert(t.name());
      }
    }
    for (const Term& t : rule.head.terms()) {
      if (t.is_variable()) head_vars.insert(t.name());
    }
    auto guards = [&](const std::set<std::string>& target) {
      if (target.empty()) return true;
      for (const Atom& atom : rule.body) {
        if (program.IsIntensional(atom.predicate())) continue;
        std::set<std::string> vars;
        for (const Term& t : atom.terms()) {
          if (t.is_variable()) vars.insert(t.name());
        }
        if (std::includes(vars.begin(), vars.end(), target.begin(),
                          target.end())) {
          return true;
        }
      }
      return false;
    };
    out.guarded = out.guarded && guards(body_vars);
    out.frontier_guarded = out.frontier_guarded && guards(head_vars);
  }
  return out;
}

}  // namespace

ProgramAnalysis AnalyzeProgramStructure(const DatalogProgram& program) {
  ProgramAnalysis out;
  PredicateGraph graph(program);
  out.stratification = Stratify(program, graph);
  out.relevance = Relevance(program);
  out.recursion = RecursionWidth(program, graph);
  out.fragment = Fragments(program);
  return out;
}

}  // namespace analysis
}  // namespace qcont

#ifndef QCONT_ANALYSIS_REPORT_H_
#define QCONT_ANALYSIS_REPORT_H_

#include <cstdint>
#include <string>

#include "analysis/program_analysis.h"
#include "cq/database.h"
#include "cq/query.h"
#include "datalog/program.h"
#include "obs/obs.h"

namespace qcont {
namespace analysis {

/// Hash of the UCQ up to consistent variable renaming: variables are
/// renamed to v0, v1, ... in first-occurrence order per disjunct before
/// hashing, so alpha-equivalent queries share a cache entry.
std::uint64_t CanonicalQueryHash(const UnionQuery& ucq);

/// Same canonicalization per rule, plus the goal predicate.
std::uint64_t CanonicalProgramHash(const DatalogProgram& program);

/// Order-independent canonical hash of a database: each fact is hashed on
/// its own (relation name + values, FNV-1a) and the per-fact digests are
/// combined commutatively, so two databases with the same fact set hash
/// identically regardless of insertion order. This is the evaluation-cache
/// key of the server's plan cache (DESIGN.md §15), extracted here so it
/// lives next to the query/program canonical hashes it composes with.
std::uint64_t CanonicalDatabaseHash(const Database& db);

/// The engine a routed call should use. One enum spans evaluation and
/// containment so reports, spans, and the CLI name engines uniformly.
enum class EngineKind {
  // CQ/UCQ evaluation & satisfiability:
  kYannakakis,       // acyclic: semijoin reduction (polytime)
  kDecompDp,         // bounded width: DP over a tree decomposition
  kGenericHomSearch, // general: backtracking homomorphism search (NP)
  // CONT(Datalog, UCQ):
  kAckEngine,        // acyclic UCQ: single-exponential engine (Theorem 6)
  kTypeEngine,       // general UCQ: 2EXPTIME type engine (Theorem 2)
};

const char* EngineKindName(EngineKind kind);

/// What a ChooseEngine() call is routing for.
enum class RoutingGoal {
  kEvaluate,     // satisfiability / evaluation of the UCQ over a database
  kContainment,  // CONT(Datalog, UCQ)
};

/// The cached product of the static analysis pass: everything the engine
/// router consults, keyed by canonical hashes (the future server's plan
/// cache key). All width fields come from *verified* decomposition
/// certificates (src/structure/decomposition.h), never raw heuristics.
struct AnalysisReport {
  static constexpr int kSchemaVersion = 1;

  std::uint64_t query_hash = 0;
  std::uint64_t program_hash = 0;  // 0 when no program was analyzed

  // --- UCQ structure ---
  int num_disjuncts = 0;
  bool acyclic = false;
  int ack_level = 0;        // k with Θ ∈ ACk (0 when cyclic)
  int treewidth = 0;        // verified width of the produced decomposition
  bool treewidth_exact = false;
  int ghw = 0;              // verified generalized-hypertree width bound
  int max_shared_vars = 0;

  // --- Program structure (valid iff has_program) ---
  bool has_program = false;
  bool recursive = false;
  ProgramAnalysis program;

  // --- Routing decision ---
  EngineKind eval_engine = EngineKind::kGenericHomSearch;
  EngineKind containment_engine = EngineKind::kTypeEngine;

  /// Schema-stable JSON (all keys always present; see DESIGN.md §14).
  std::string ToJson() const;
};

/// Routing knobs, consulted by ChooseEngine and the Routed* entry points.
struct RoutingOptions {
  /// Use the decomposition DP for satisfiability when the (verified)
  /// treewidth is at most this and the query is cyclic.
  int decomp_width_threshold = 3;
  /// Consult/populate the global analysis cache.
  bool use_cache = true;
  /// Observability sink (optional, borrowed): `analysis/report` spans,
  /// `analysis.cache_{hits,misses}` and `analysis.route.<engine>` counters.
  const ObsContext* obs = nullptr;
};

/// Pure routing policy over a report: acyclic → Yannakakis/ACk, small
/// verified width → decomposition DP (evaluation only), otherwise the
/// general engine. Never inspects anything but the report.
EngineKind ChooseEngine(const AnalysisReport& report, RoutingGoal goal,
                        const RoutingOptions& options = {});

/// Builds (or fetches from the process-wide cache) the report for a UCQ,
/// optionally paired with a program. Thread-safe; cache entries are keyed
/// by (program_hash, query_hash).
AnalysisReport AnalyzeForRouting(const UnionQuery& ucq,
                                 const RoutingOptions& options = {});
AnalysisReport AnalyzeForRouting(const DatalogProgram& program,
                                 const UnionQuery& ucq,
                                 const RoutingOptions& options = {});

/// Cache introspection (tests, metrics).
struct AnalysisCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::size_t entries = 0;
};
AnalysisCacheStats GlobalAnalysisCacheStats();
void ClearGlobalAnalysisCache();

}  // namespace analysis
}  // namespace qcont

#endif  // QCONT_ANALYSIS_REPORT_H_

#ifndef QCONT_ANALYSIS_ANALYZER_H_
#define QCONT_ANALYSIS_ANALYZER_H_

#include <vector>

#include "analysis/diagnostic.h"
#include "cq/query.h"
#include "datalog/program.h"
#include "graphdb/c2rpq.h"

namespace qcont {
namespace analysis {

/// Knobs for one analyzer run. The error passes always run — they are the
/// definition of validity (DatalogProgram::Validate() is FirstError over
/// them) — warnings and the advisor can be switched off.
struct AnalysisOptions {
  /// Emit QC1xx warnings (dead rules, singletons, cross joins, duplicates,
  /// empty regex languages).
  bool style_warnings = true;

  /// Emit QC2xx info diagnostics: the tractability advisor classifies the
  /// input (nonrecursive/linear/monadic; acyclic/ACk/TW(k)/ACRk) and names
  /// the containment engine and complexity bound that applies.
  bool tractability_advisor = true;

  /// 1-based source line of rule/disjunct i, as produced by the parser's
  /// SourceLines; diagnostics carry these lines. Empty when the input was
  /// built programmatically.
  std::vector<int> rule_lines;
};

/// Multi-pass static analysis of a Datalog program: rule safety, arity
/// consistency, goal sanity (errors); unreachable predicates via the SCC
/// condensation of the predicate dependency graph, singleton variables,
/// cartesian products, duplicate rules/atoms (warnings); and the fragment
/// report (info). Never fails: malformed inputs yield error diagnostics.
std::vector<Diagnostic> AnalyzeProgram(const DatalogProgram& program,
                                       const AnalysisOptions& options = {});

/// Same for a UCQ: head safety and arity consistency (errors), duplicate
/// disjuncts/atoms, singletons, cross joins (warnings), and the
/// tractability advisor (acyclic + ACk level, treewidth, engine routing).
std::vector<Diagnostic> AnalyzeUcq(const UnionQuery& ucq,
                                   const AnalysisOptions& options = {});

/// Same for a UC2RPQ; additionally flags atoms whose regular expression
/// denotes the empty language (the disjunct can never match).
std::vector<Diagnostic> AnalyzeUC2rpq(const UC2rpq& query,
                                      const AnalysisOptions& options = {});

/// The preconditions the CONT(Datalog, UCQ) engines share: the query arity
/// equals the goal arity, the query is constant-free, mentions only
/// extensional predicates, and uses them at the program's arities. Engines
/// surface FirstError() of this; `lint` prints all of it.
std::vector<Diagnostic> CheckContainmentPair(const DatalogProgram& program,
                                             const UnionQuery& ucq);

/// The CONT(Datalog, UC2RPQ) preconditions: arity agreement and a binary
/// extensional schema on the program side.
std::vector<Diagnostic> CheckContainmentPair(const DatalogProgram& program,
                                             const UC2rpq& gamma);

}  // namespace analysis
}  // namespace qcont

#endif  // QCONT_ANALYSIS_ANALYZER_H_

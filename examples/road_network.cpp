// road_network: graph-database queries and Datalog-in-UC2RPQ containment.
//
// A multimodal transport network is a graph database with labeled edges
// (road, rail, ferry). Reachability policies are UC2RPQs; route-planning
// logic is recursive Datalog. qcont answers two kinds of questions:
//   1. evaluation — which cities satisfy a regular-path policy?
//   2. static analysis — is every route the Datalog planner can ever derive
//      guaranteed to satisfy the policy, on *all* networks? (Theorem 9's
//      ACRk engine.)
//
// Build & run:  cmake --build build && ./build/examples/road_network

#include <cstdio>

#include "core/datalog_uc2rpq.h"
#include "graphdb/c2rpq.h"
#include "graphdb/graph_db.h"
#include "parser/parser.h"

int main() {
  using namespace qcont;

  // --- 1. Evaluation over a concrete network -------------------------------
  GraphDatabase network;
  network.AddEdge("porto", "road", "lisbon");
  network.AddEdge("lisbon", "rail", "madrid");
  network.AddEdge("madrid", "rail", "barcelona");
  network.AddEdge("barcelona", "ferry", "rome");
  network.AddEdge("rome", "road", "florence");
  network.AddEdge("madrid", "road", "valencia");

  // Pairs connected by rail-only corridors, any direction (2RPQs can walk
  // edges backwards with the inverse symbol).
  auto corridor = ParseUC2rpq("Q(x,y) :- [(rail|rail-)+](x,y).");
  auto result = EvaluateUC2rpq(*corridor, network);
  std::printf("rail corridor pairs (%zu):\n", result->size());
  for (const Tuple& t : *result) {
    std::printf("  %s <-> %s\n", t[0].c_str(), t[1].c_str());
  }

  // Cities that can reach a ferry terminal by land.
  auto to_ferry = ParseUC2rpq("Q(x) :- [(road|rail)* ferry](x, y).");
  auto reach = EvaluateUC2rpq(*to_ferry, network);
  std::printf("\ncities with a land route to a ferry (%zu):\n", reach->size());
  for (const Tuple& t : *reach) std::printf("  %s\n", t[0].c_str());

  // --- 2. Static policy verification ---------------------------------------
  // The planner derives multi-hop land routes recursively.
  auto planner = ParseProgram(R"(
    route(x, y) :- road(x, y).
    route(x, y) :- rail(x, y).
    route(x, y) :- road(x, z), route(z, y).
    route(x, y) :- rail(x, z), route(z, y).
    goal route.
  )");
  // Policy A: every planned route is a land path (holds).
  auto policy_land = ParseUC2rpq("Q(x,y) :- [(road|rail)+](x,y).");
  // Policy B: every planned route begins on a road (fails: rail starts).
  auto policy_road_first = ParseUC2rpq("Q(x,y) :- [road (road|rail)*](x,y).");

  for (auto [label, policy] :
       {std::pair{"land-only", &*policy_land},
        std::pair{"road-first", &*policy_road_first}}) {
    auto verdict = DatalogContainedInUC2rpq(*planner, *policy);
    if (!verdict.ok()) {
      std::fprintf(stderr, "engine error: %s\n",
                   verdict.status().ToString().c_str());
      return 1;
    }
    std::printf("\npolicy %-11s : %s", label,
                verdict->verdict == Uc2rpqVerdict::kContained
                    ? "VERIFIED for all networks"
                    : "VIOLATED");
    if (verdict->witness.has_value()) {
      std::printf("\n  counterexample route shape: %s",
                  verdict->witness->ToString().c_str());
    }
    std::printf("\n");
  }
  return 0;
}

// qcont_cli: command-line front-end to the containment engines.
//
// Usage:
//   qcont_cli [--trace=FILE] [--metrics] <subcommand> <args...>
//
//   qcont_cli contains  <program-file> <ucq-file>     relational containment
//   qcont_cli equiv     <program-file> <ucq-file>     boundedness check
//   qcont_cli rcontains <program-file> <uc2rpq-file>  graph containment
//   qcont_cli classify  <ucq-file>                    structural classes
//   qcont_cli eval      <program-file> <db-file>      bottom-up evaluation
//   qcont_cli lint      [program|ucq|uc2rpq] <file>   static analysis
//   qcont_cli analyze [--json] <ucq-file> [program]   AnalysisReport + routing
//
// --trace=FILE writes a Chrome trace_event JSON of the run (load it in
// chrome://tracing or https://ui.perfetto.dev). --metrics prints the final
// counter/gauge snapshot to stderr after the subcommand's own output. Both
// flags work on every subcommand and may appear before or after it.
//
// File formats are the library's text syntax (see README "Input syntax").
// Exit code: 0 = containment/equivalence holds, 1 = it does not (witness on
// stdout), 2 = usage or input error, 3 = undecided (cyclic UC2RPQ search
// exhausted). For lint: 0 = no errors, 1 = error diagnostics reported,
// 2 = usage or syntax error.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/diagnostic.h"
#include "analysis/report.h"
#include "core/datalog_uc2rpq.h"
#include "core/equivalence.h"
#include "core/router.h"
#include "datalog/eval.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "parser/parser.h"
#include "structure/classify.h"

namespace {

using namespace qcont;

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: qcont_cli [--trace=FILE] [--metrics] <subcommand> <args>\n"
      "       qcont_cli contains|equiv|rcontains <program> <query>\n"
      "       qcont_cli classify <ucq>\n"
      "       qcont_cli eval <program> <database>\n"
      "       qcont_cli lint [program|ucq|uc2rpq] <file>\n"
      "       qcont_cli analyze [--json] <ucq> [program]\n");
  return 2;
}

template <typename T>
bool Check(const Result<T>& r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, r.status().ToString().c_str());
    return false;
  }
  return true;
}

// Runs the static analyzer over `text`, printing one line per diagnostic
// plus a summary. `kind` is "program", "ucq", "uc2rpq", or "" to guess:
// bracketed regex atoms mean UC2RPQ, otherwise treat as a program (which
// also covers UCQ syntax; pass the kind explicitly to lint a UCQ as such).
int Lint(const std::string& kind_arg, const std::string& text) {
  std::string kind = kind_arg;
  if (kind.empty()) {
    kind = text.find('[') != std::string::npos ? "uc2rpq" : "program";
  }

  SourceLines lines;
  std::vector<analysis::Diagnostic> diags;
  analysis::AnalysisOptions options;
  if (kind == "program") {
    auto program = ParseProgramUnvalidated(text, &lines);
    if (!Check(program, "program")) return 2;
    options.rule_lines = lines.rule_lines;
    diags = analysis::AnalyzeProgram(*program, options);
  } else if (kind == "ucq") {
    auto ucq = ParseUcqUnvalidated(text, &lines);
    if (!Check(ucq, "ucq")) return 2;
    options.rule_lines = lines.rule_lines;
    diags = analysis::AnalyzeUcq(*ucq, options);
  } else if (kind == "uc2rpq") {
    auto gamma = ParseUC2rpqUnvalidated(text, &lines);
    if (!Check(gamma, "uc2rpq")) return 2;
    options.rule_lines = lines.rule_lines;
    diags = analysis::AnalyzeUC2rpq(*gamma, options);
  } else {
    return Usage();
  }

  for (const analysis::Diagnostic& d : diags) {
    std::printf("%s\n", analysis::FormatDiagnostic(d).c_str());
  }
  int errors = analysis::CountSeverity(diags, analysis::Severity::kError);
  int warnings = analysis::CountSeverity(diags, analysis::Severity::kWarning);
  std::printf("%d error(s), %d warning(s)\n", errors, warnings);
  return errors > 0 ? 1 : 0;
}

// The subcommand dispatcher. `args` is argv with the program name and the
// --trace/--metrics flags already stripped, so args[0] is the mode.
int RunCommand(const std::vector<std::string>& args, const ObsContext* obs) {
  if (args.size() < 2) return Usage();
  const std::string& mode = args[0];
  const std::string span_name = "cli/" + mode;
  ObsSpan cli_span(obs, span_name.c_str(), "cli");

  if (mode == "analyze") {
    // analyze [--json] <ucq-file> [program-file]
    bool json = false;
    std::vector<std::string> files;
    for (std::size_t i = 1; i < args.size(); ++i) {
      if (args[i] == "--json") {
        json = true;
      } else {
        files.push_back(args[i]);
      }
    }
    if (files.empty() || files.size() > 2) return Usage();
    std::string ucq_text;
    if (!ReadFile(files[0], &ucq_text)) {
      std::fprintf(stderr, "cannot read %s\n", files[0].c_str());
      return 2;
    }
    auto ucq = ParseUcq(ucq_text);
    if (!Check(ucq, "query")) return 2;
    analysis::RoutingOptions routing;
    routing.obs = obs;
    analysis::AnalysisReport report;
    if (files.size() == 2) {
      std::string program_text;
      if (!ReadFile(files[1], &program_text)) {
        std::fprintf(stderr, "cannot read %s\n", files[1].c_str());
        return 2;
      }
      auto program = ParseProgram(program_text);
      if (!Check(program, "program")) return 2;
      report = analysis::AnalyzeForRouting(*program, *ucq, routing);
    } else {
      report = analysis::AnalyzeForRouting(*ucq, routing);
    }
    if (json) {
      std::printf("%s\n", report.ToJson().c_str());
    } else {
      std::printf("query: %d disjunct(s), %s, treewidth %s%d, ghw <= %d\n",
                  report.num_disjuncts,
                  report.acyclic
                      ? ("acyclic (AC" + std::to_string(report.ack_level) + ")")
                            .c_str()
                      : "cyclic",
                  report.treewidth_exact ? "" : "<= ", report.treewidth,
                  report.ghw);
      if (report.has_program) {
        std::printf(
            "program: %s, %d stratum/strata, %d relevant rule(s), "
            "fragments: %s\n",
            report.recursive ? "recursive" : "nonrecursive",
            report.program.stratification.num_strata,
            report.program.relevance.num_relevant_rules,
            report.program.fragment.Describe().c_str());
      }
      std::printf("routing: eval=%s containment=%s\n",
                  analysis::EngineKindName(report.eval_engine),
                  analysis::EngineKindName(report.containment_engine));
    }
    return 0;
  }

  if (mode == "lint") {
    // lint <file>  or  lint <kind> <file>
    const std::string kind = args.size() >= 3 ? args[1] : "";
    const std::string& path = args.size() >= 3 ? args[2] : args[1];
    std::string text;
    if (!ReadFile(path, &text)) {
      std::fprintf(stderr, "cannot read %s\n", path.c_str());
      return 2;
    }
    return Lint(kind, text);
  }

  std::string first_text;
  if (!ReadFile(args[1], &first_text)) {
    std::fprintf(stderr, "cannot read %s\n", args[1].c_str());
    return 2;
  }

  if (mode == "classify") {
    auto ucq = ParseUcq(first_text);
    if (!Check(ucq, "query")) return 2;
    auto c = ClassifyUcq(*ucq);
    if (!Check(c, "classify")) return 2;
    std::printf("%s\n", DescribeClassification(*c).c_str());
    return 0;
  }

  if (args.size() < 3) return Usage();
  std::string second_text;
  if (!ReadFile(args[2], &second_text)) {
    std::fprintf(stderr, "cannot read %s\n", args[2].c_str());
    return 2;
  }
  auto program = ParseProgram(first_text);
  if (!Check(program, "program")) return 2;

  if (mode == "eval") {
    auto db = ParseDatabase(second_text);
    if (!Check(db, "database")) return 2;
    EvalOptions eval_options;
    eval_options.obs = obs;
    auto result = EvaluateGoal(*program, *db, eval_options);
    if (!Check(result, "evaluation")) return 2;
    for (const Tuple& t : *result) {
      std::string line = program->goal_predicate() + "(";
      for (std::size_t i = 0; i < t.size(); ++i) {
        if (i > 0) line += ",";
        line += t[i];
      }
      std::printf("%s)\n", line.c_str());
    }
    return 0;
  }

  if (mode == "contains" || mode == "equiv") {
    auto ucq = ParseUcq(second_text);
    if (!Check(ucq, "query")) return 2;
    RouterOptions router;
    router.obs = obs;
    if (mode == "contains") {
      auto routed = DecideContainment(*program, *ucq, router);
      if (!Check(routed, "containment")) return 2;
      std::printf("%s  (%s)\n",
                  routed->answer.contained ? "CONTAINED" : "NOT CONTAINED",
                  RouteName(routed->route));
      if (routed->answer.witness.has_value()) {
        std::printf("witness expansion: %s\n",
                    routed->answer.witness->ToString().c_str());
      }
      return routed->answer.contained ? 0 : 1;
    }
    auto eq = DatalogEquivalentToUcq(*program, *ucq, router, EvalOptions());
    if (!Check(eq, "equivalence")) return 2;
    std::printf("program in query: %s\nquery in program: %s\nequivalent: %s\n",
                eq->program_in_ucq ? "yes" : "no",
                eq->ucq_in_program ? "yes" : "no",
                eq->equivalent ? "yes" : "no");
    if (eq->witness.has_value()) {
      std::printf("witness: %s\n", eq->witness->ToString().c_str());
    }
    return eq->equivalent ? 0 : 1;
  }

  if (mode == "rcontains") {
    auto gamma = ParseUC2rpq(second_text);
    if (!Check(gamma, "query")) return 2;
    Uc2rpqSearchOptions search;
    search.obs = obs;
    auto verdict = DatalogContainedInUC2rpq(*program, *gamma, search);
    if (!Check(verdict, "containment")) return 2;
    switch (verdict->verdict) {
      case Uc2rpqVerdict::kContained:
        std::printf("CONTAINED  (%s)\n", verdict->used_exact_engine
                                             ? "exact ACRk engine"
                                             : "bounded search");
        return 0;
      case Uc2rpqVerdict::kNotContained:
        std::printf("NOT CONTAINED\n");
        if (verdict->witness.has_value()) {
          std::printf("witness expansion: %s\n",
                      verdict->witness->ToString().c_str());
        }
        return 1;
      case Uc2rpqVerdict::kUnknown:
        std::printf("UNDECIDED (cyclic query; refutation search exhausted)\n");
        return 3;
    }
  }
  return Usage();
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  bool print_metrics = false;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
      if (trace_path.empty()) {
        std::fprintf(stderr, "--trace needs a file name\n");
        return 2;
      }
    } else if (arg == "--metrics") {
      print_metrics = true;
    } else {
      args.push_back(arg);
    }
  }

  MetricRegistry metrics;
  TraceSession trace;
  ObsContext obs_storage{&metrics, &trace};
  // Only hand the engines a sink when some output was requested, so plain
  // invocations keep the zero-instrumentation fast path.
  const ObsContext* obs =
      (!trace_path.empty() || print_metrics) ? &obs_storage : nullptr;

  int code = RunCommand(args, obs);

  if (!trace_path.empty()) {
    Status written = trace.WriteFile(trace_path);
    if (!written.ok()) {
      std::fprintf(stderr, "--trace: %s\n", written.ToString().c_str());
      if (code == 0) code = 2;
    }
  }
  if (print_metrics) {
    std::fprintf(stderr, "== metrics ==\n");
    for (const auto& [name, value] : metrics.Snapshot()) {
      std::fprintf(stderr, "%-32s %llu\n", name.c_str(),
                   static_cast<unsigned long long>(value));
    }
  }
  return code;
}

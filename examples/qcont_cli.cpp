// qcont_cli: command-line front-end to the containment engines.
//
// Usage:
//   qcont_cli contains  <program-file> <ucq-file>     relational containment
//   qcont_cli equiv     <program-file> <ucq-file>     boundedness check
//   qcont_cli rcontains <program-file> <uc2rpq-file>  graph containment
//   qcont_cli classify  <ucq-file>                    structural classes
//   qcont_cli eval      <program-file> <db-file>      bottom-up evaluation
//   qcont_cli lint      [program|ucq|uc2rpq] <file>   static analysis
//
// File formats are the library's text syntax (see README "Input syntax").
// Exit code: 0 = containment/equivalence holds, 1 = it does not (witness on
// stdout), 2 = usage or input error, 3 = undecided (cyclic UC2RPQ search
// exhausted). For lint: 0 = no errors, 1 = error diagnostics reported,
// 2 = usage or syntax error.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/diagnostic.h"
#include "core/datalog_uc2rpq.h"
#include "core/equivalence.h"
#include "core/router.h"
#include "datalog/eval.h"
#include "parser/parser.h"
#include "structure/classify.h"

namespace {

using namespace qcont;

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: qcont_cli contains|equiv|rcontains <program> <query>\n"
               "       qcont_cli classify <ucq>\n"
               "       qcont_cli eval <program> <database>\n"
               "       qcont_cli lint [program|ucq|uc2rpq] <file>\n");
  return 2;
}

template <typename T>
bool Check(const Result<T>& r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, r.status().ToString().c_str());
    return false;
  }
  return true;
}

// Runs the static analyzer over `text`, printing one line per diagnostic
// plus a summary. `kind` is "program", "ucq", "uc2rpq", or "" to guess:
// bracketed regex atoms mean UC2RPQ, otherwise treat as a program (which
// also covers UCQ syntax; pass the kind explicitly to lint a UCQ as such).
int Lint(const std::string& kind_arg, const std::string& text) {
  std::string kind = kind_arg;
  if (kind.empty()) {
    kind = text.find('[') != std::string::npos ? "uc2rpq" : "program";
  }

  SourceLines lines;
  std::vector<analysis::Diagnostic> diags;
  analysis::AnalysisOptions options;
  if (kind == "program") {
    auto program = ParseProgramUnvalidated(text, &lines);
    if (!Check(program, "program")) return 2;
    options.rule_lines = lines.rule_lines;
    diags = analysis::AnalyzeProgram(*program, options);
  } else if (kind == "ucq") {
    auto ucq = ParseUcqUnvalidated(text, &lines);
    if (!Check(ucq, "ucq")) return 2;
    options.rule_lines = lines.rule_lines;
    diags = analysis::AnalyzeUcq(*ucq, options);
  } else if (kind == "uc2rpq") {
    auto gamma = ParseUC2rpqUnvalidated(text, &lines);
    if (!Check(gamma, "uc2rpq")) return 2;
    options.rule_lines = lines.rule_lines;
    diags = analysis::AnalyzeUC2rpq(*gamma, options);
  } else {
    return Usage();
  }

  for (const analysis::Diagnostic& d : diags) {
    std::printf("%s\n", analysis::FormatDiagnostic(d).c_str());
  }
  int errors = analysis::CountSeverity(diags, analysis::Severity::kError);
  int warnings = analysis::CountSeverity(diags, analysis::Severity::kWarning);
  std::printf("%d error(s), %d warning(s)\n", errors, warnings);
  return errors > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string mode = argv[1];

  if (mode == "lint") {
    // lint <file>  or  lint <kind> <file>
    const std::string kind = argc >= 4 ? argv[2] : "";
    const char* path = argc >= 4 ? argv[3] : argv[2];
    std::string text;
    if (!ReadFile(path, &text)) {
      std::fprintf(stderr, "cannot read %s\n", path);
      return 2;
    }
    return Lint(kind, text);
  }

  std::string first_text;
  if (!ReadFile(argv[2], &first_text)) {
    std::fprintf(stderr, "cannot read %s\n", argv[2]);
    return 2;
  }

  if (mode == "classify") {
    auto ucq = ParseUcq(first_text);
    if (!Check(ucq, "query")) return 2;
    auto c = ClassifyUcq(*ucq);
    if (!Check(c, "classify")) return 2;
    std::printf("%s\n", DescribeClassification(*c).c_str());
    return 0;
  }

  if (argc < 4) return Usage();
  std::string second_text;
  if (!ReadFile(argv[3], &second_text)) {
    std::fprintf(stderr, "cannot read %s\n", argv[3]);
    return 2;
  }
  auto program = ParseProgram(first_text);
  if (!Check(program, "program")) return 2;

  if (mode == "eval") {
    auto db = ParseDatabase(second_text);
    if (!Check(db, "database")) return 2;
    auto result = EvaluateGoal(*program, *db);
    if (!Check(result, "evaluation")) return 2;
    for (const Tuple& t : *result) {
      std::string line = program->goal_predicate() + "(";
      for (std::size_t i = 0; i < t.size(); ++i) {
        if (i > 0) line += ",";
        line += t[i];
      }
      std::printf("%s)\n", line.c_str());
    }
    return 0;
  }

  if (mode == "contains" || mode == "equiv") {
    auto ucq = ParseUcq(second_text);
    if (!Check(ucq, "query")) return 2;
    if (mode == "contains") {
      auto routed = DecideContainment(*program, *ucq);
      if (!Check(routed, "containment")) return 2;
      std::printf("%s  (%s)\n",
                  routed->answer.contained ? "CONTAINED" : "NOT CONTAINED",
                  RouteName(routed->route));
      if (routed->answer.witness.has_value()) {
        std::printf("witness expansion: %s\n",
                    routed->answer.witness->ToString().c_str());
      }
      return routed->answer.contained ? 0 : 1;
    }
    auto eq = DatalogEquivalentToUcq(*program, *ucq);
    if (!Check(eq, "equivalence")) return 2;
    std::printf("program in query: %s\nquery in program: %s\nequivalent: %s\n",
                eq->program_in_ucq ? "yes" : "no",
                eq->ucq_in_program ? "yes" : "no",
                eq->equivalent ? "yes" : "no");
    if (eq->witness.has_value()) {
      std::printf("witness: %s\n", eq->witness->ToString().c_str());
    }
    return eq->equivalent ? 0 : 1;
  }

  if (mode == "rcontains") {
    auto gamma = ParseUC2rpq(second_text);
    if (!Check(gamma, "query")) return 2;
    auto verdict = DatalogContainedInUC2rpq(*program, *gamma);
    if (!Check(verdict, "containment")) return 2;
    switch (verdict->verdict) {
      case Uc2rpqVerdict::kContained:
        std::printf("CONTAINED  (%s)\n", verdict->used_exact_engine
                                             ? "exact ACRk engine"
                                             : "bounded search");
        return 0;
      case Uc2rpqVerdict::kNotContained:
        std::printf("NOT CONTAINED\n");
        if (verdict->witness.has_value()) {
          std::printf("witness expansion: %s\n",
                      verdict->witness->ToString().c_str());
        }
        return 1;
      case Uc2rpqVerdict::kUnknown:
        std::printf("UNDECIDED (cyclic query; refutation search exhausted)\n");
        return 3;
    }
  }
  return Usage();
}

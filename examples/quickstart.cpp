// Quickstart: the paper's running example (Examples 1 and 2).
//
// The "compulsive consumers" Datalog program is recursive, yet it is
// equivalent to a non-recursive UCQ. qcont proves the equivalence (routing
// the hard direction through the EXPTIME ACk engine of Theorem 6) and then
// demonstrates it on a concrete database.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "core/equivalence.h"
#include "cq/homomorphism.h"
#include "datalog/eval.h"
#include "parser/parser.h"

int main() {
  using namespace qcont;

  auto program = ParseProgram(R"(
    # Compulsive consumers: they buy everything they like, plus anything
    # trendy once they have bought something (Example 1, after Naughton).
    buys(x, y) :- likes(x, y).
    buys(x, y) :- trendy(x), buys(z, y).
    goal buys.
  )");
  if (!program.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }

  auto ucq = ParseUcq(R"(
    Q(x, y) :- likes(x, y).
    Q(x, y) :- trendy(x), likes(z, y).
  )");
  if (!ucq.ok()) {
    std::fprintf(stderr, "parse error: %s\n", ucq.status().ToString().c_str());
    return 1;
  }

  std::printf("Program Pi:\n%s\n", program->ToString().c_str());
  std::printf("UCQ Theta:\n  %s\n\n", ucq->ToString().c_str());

  auto equivalence = DatalogEquivalentToUcq(*program, *ucq);
  if (!equivalence.ok()) {
    std::fprintf(stderr, "engine error: %s\n",
                 equivalence.status().ToString().c_str());
    return 1;
  }
  std::printf("Pi contained in Theta : %s\n",
              equivalence->program_in_ucq ? "yes" : "no");
  std::printf("Theta contained in Pi : %s\n",
              equivalence->ucq_in_program ? "yes" : "no");
  std::printf("equivalent            : %s  (decided by the %s)\n\n",
              equivalence->equivalent ? "yes" : "no",
              RouteName(equivalence->route));

  // Confirm on a concrete database.
  auto db = ParseDatabase(R"(
    likes('ann', 'vinyl').  likes('bob', 'vinyl').
    trendy('ann').          likes('bob', 'sneakers').
  )");
  auto recursive = EvaluateGoal(*program, *db);
  auto direct = EvaluateUcq(*ucq, *db);
  std::printf("On the sample database both queries return %zu tuples:\n",
              recursive->size());
  for (const Tuple& t : *recursive) {
    std::printf("  buys(%s, %s)\n", t[0].c_str(), t[1].c_str());
  }
  std::printf("evaluation results identical: %s\n",
              (*recursive == direct) ? "yes" : "no");

  // What happens if the UCQ forgets a disjunct? qcont produces a concrete
  // counterexample: an expansion of the program that escapes the UCQ.
  auto smaller = ParseUcq("Q(x, y) :- likes(x, y).");
  auto weaker = DatalogEquivalentToUcq(*program, *smaller);
  std::printf("\nDropping the second disjunct breaks containment: %s\n",
              weaker->program_in_ucq ? "still contained?!" : "not contained");
  if (weaker->witness.has_value()) {
    std::printf("counterexample expansion: %s\n",
                weaker->witness->ToString().c_str());
  }
  return 0;
}

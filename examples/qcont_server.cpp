// qcont_server: long-running containment-as-a-service driver.
//
// Usage:
//   qcont_server [flags] < requests.jsonl > responses.jsonl
//
//   --threads=N        concurrent in-flight requests per batch (default 1)
//   --engine-threads=N engine-internal parallelism per request (default 1)
//   --max-batch=N      admission control: requests per scheduler batch (32)
//   --deadline-ms=N    default per-request deadline, 0 = none (default 0)
//   --cache-entries=N  per-kind plan-cache LRU capacity (default 4096);
//                      also sizes the program-artifact layer (default 64)
//   --no-minimize      skip the UCQ core-minimization pre-pass
//   --trace=FILE       write a Chrome trace_event JSON of the run
//   --metrics          print the final counter snapshot to stderr on exit
//
// The server reads newline-delimited JSON requests on stdin and writes one
// response line per request on stdout, in request order (schema v1 — see
// DESIGN.md §15 and the README "Server" section):
//
//   {"id":1,"op":"containment","program":"...","query":"..."}
//   {"id":2,"op":"eval","program":"...","database":"..."}
//   {"id":3,"op":"analyze","query":"..."}
//
// All requests share one interned value pool and one canonical-hash plan
// cache, so repeated or alpha-renamed resubmissions answer from cache.
// Exit code: 0 at end of input, 2 on usage errors.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "server/server.h"

namespace {

using namespace qcont;

int Usage() {
  std::fprintf(
      stderr,
      "usage: qcont_server [--threads=N] [--engine-threads=N] [--max-batch=N]\n"
      "                    [--deadline-ms=N] [--cache-entries=N]\n"
      "                    [--no-minimize] [--trace=FILE] [--metrics]\n"
      "reads JSONL requests on stdin, writes JSONL responses on stdout\n");
  return 2;
}

/// Parses the value of a `--flag=N` argument; false on malformed numbers.
bool ParseCount(const std::string& arg, std::size_t prefix_len,
                long long* out) {
  const std::string value = arg.substr(prefix_len);
  if (value.empty()) return false;
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || parsed < 0) return false;
  *out = parsed;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // Unsynced iostreams let ServeStream's greedy batching see buffered
  // input (in_avail() is pinned to 0 on a stdio-synced cin).
  std::ios::sync_with_stdio(false);

  server::ServerOptions options;
  std::string trace_path;
  bool print_metrics = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    long long n = 0;
    if (arg.rfind("--threads=", 0) == 0) {
      if (!ParseCount(arg, 10, &n) || n < 1) return Usage();
      options.threads = static_cast<int>(n);
    } else if (arg.rfind("--engine-threads=", 0) == 0) {
      if (!ParseCount(arg, 17, &n) || n < 1) return Usage();
      options.engine_threads = static_cast<int>(n);
    } else if (arg.rfind("--max-batch=", 0) == 0) {
      if (!ParseCount(arg, 12, &n) || n < 1) return Usage();
      options.max_batch = static_cast<std::size_t>(n);
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      if (!ParseCount(arg, 14, &n)) return Usage();
      options.default_deadline_ms = static_cast<std::uint64_t>(n);
    } else if (arg.rfind("--cache-entries=", 0) == 0) {
      if (!ParseCount(arg, 16, &n)) return Usage();
      options.cache.verdict_capacity = static_cast<std::size_t>(n);
      options.cache.analysis_capacity = static_cast<std::size_t>(n);
      options.cache.core_capacity = static_cast<std::size_t>(n);
      options.cache.eval_capacity = static_cast<std::size_t>(n);
      options.cache.artifact_capacity = static_cast<std::size_t>(n);
    } else if (arg == "--no-minimize") {
      options.minimize_queries = false;
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
      if (trace_path.empty()) return Usage();
    } else if (arg == "--metrics") {
      print_metrics = true;
    } else {
      return Usage();
    }
  }

  MetricRegistry metrics;
  TraceSession trace;
  ObsContext obs_storage{&metrics, &trace};
  // Only hand the server a sink when some output was requested, so plain
  // invocations keep the zero-instrumentation fast path.
  const ObsContext* obs =
      (!trace_path.empty() || print_metrics) ? &obs_storage : nullptr;
  options.obs = obs;

  server::Server srv(options);
  srv.ServeStream(std::cin, std::cout);

  int code = 0;
  if (!trace_path.empty()) {
    Status written = trace.WriteFile(trace_path);
    if (!written.ok()) {
      std::fprintf(stderr, "--trace: %s\n", written.ToString().c_str());
      code = 2;
    }
  }
  if (print_metrics) {
    std::fprintf(stderr, "== metrics ==\n");
    for (const auto& [name, value] : metrics.Snapshot()) {
      std::fprintf(stderr, "%-32s %llu\n", name.c_str(),
                   static_cast<unsigned long long>(value));
    }
  }
  return code;
}

// view_rewriter: detect *bounded* recursion and rewrite it away.
//
// A recursive Datalog view that is equivalent to a UCQ can be replaced by
// that UCQ — typically far cheaper to evaluate and optimizable by any
// relational planner. This example synthesizes candidate UCQs from the
// program's own expansions (depth 1, 2, ...) and uses the containment
// engines to certify equivalence (Corollary 2 of the paper): the candidate
// is always contained in the program, so the program is bounded iff the
// program is contained in the candidate.
//
// Build & run:  cmake --build build && ./build/examples/view_rewriter

#include <cstdio>
#include <string>
#include <vector>

#include "core/router.h"
#include "datalog/expansion.h"
#include "parser/parser.h"

namespace {

using namespace qcont;

// Tries to find a UCQ equivalent to `program` among its expansion prefixes.
// Returns true (and prints the rewriting) if the recursion is bounded
// within `max_depth`.
bool TryRewrite(const std::string& name, const std::string& text,
                int max_depth) {
  auto program = ParseProgram(text);
  if (!program.ok()) {
    std::fprintf(stderr, "%s: %s\n", name.c_str(),
                 program.status().ToString().c_str());
    return false;
  }
  std::printf("=== %s ===\n%s", name.c_str(), program->ToString().c_str());
  for (int depth = 0; depth <= max_depth; ++depth) {
    auto candidate_cqs = EnumerateExpansions(*program, depth, 200);
    if (!candidate_cqs.ok() || candidate_cqs->empty()) continue;
    UnionQuery candidate(*candidate_cqs);
    // The candidate is a union of expansions, hence contained in Pi; the
    // program is equivalent to it iff Pi ⊆ candidate.
    auto routed = DecideContainment(*program, candidate);
    if (!routed.ok()) {
      std::fprintf(stderr, "  engine error: %s\n",
                   routed.status().ToString().c_str());
      return false;
    }
    if (routed->answer.contained) {
      std::printf("  BOUNDED at depth %d (via the %s):\n", depth,
                  RouteName(routed->route));
      for (const ConjunctiveQuery& cq : candidate.disjuncts()) {
        std::printf("    %s\n", cq.ToString().c_str());
      }
      std::printf("\n");
      return true;
    }
    if (routed->answer.witness.has_value()) {
      std::printf("  depth %d insufficient; escaping expansion: %s\n", depth,
                  routed->answer.witness->ToString().c_str());
    }
  }
  std::printf("  UNBOUNDED within depth %d: the recursion is essential.\n\n",
              max_depth);
  return false;
}

}  // namespace

int main() {
  // Bounded: the compulsive-consumers view (rewrites at depth 1).
  TryRewrite("compulsive_consumers",
             "buys(x,y) :- likes(x,y). "
             "buys(x,y) :- trendy(x), buys(z,y). goal buys.",
             3);

  // Bounded: a two-stage pipeline that looks recursive but saturates —
  // anything promoted twice is already promoted once with the same result.
  TryRewrite("saturating_promotion",
             "promoted(x) :- nominated(x). "
             "promoted(x) :- endorsed(x,y), promoted(x). goal promoted.",
             3);

  // Unbounded: transitive closure has no UCQ equivalent.
  TryRewrite("transitive_closure",
             "t(x,y) :- edge(x,y). t(x,y) :- edge(x,z), t(z,y). goal t.",
             3);
  return 0;
}

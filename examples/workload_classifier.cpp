// workload_classifier: route a UCQ workload to the right containment engine.
//
// The paper's message is that *which* structural class a UCQ falls into
// decides the cost of checking a recursive program against it: acyclic
// queries with few shared variables (ACk) admit the EXPTIME engine, while
// cyclic or wide queries need the doubly-exponential general engine. This
// example classifies a workload the way Section 3/4 of the paper does and
// runs each check on its cheapest engine.
//
// Build & run:  cmake --build build && ./build/examples/workload_classifier

#include <cstdio>
#include <string>
#include <vector>

#include "core/hack.h"
#include "core/router.h"
#include "parser/parser.h"
#include "structure/classify.h"

int main() {
  using namespace qcont;

  // A recursive "audit" program: flags accounts reachable from a seed
  // account through transfers.
  auto program = ParseProgram(R"(
    flagged(x) :- seed(x).
    flagged(x) :- transfer(y, x), flagged(y).
    goal flagged.
  )");

  struct Entry {
    const char* name;
    const char* text;
  };
  const std::vector<Entry> workload = {
      {"direct_seed", "Q(x) :- seed(x)."},
      {"one_hop", "Q(x) :- seed(x). Q(x) :- transfer(y,x), seed(y)."},
      {"triangle_alert",
       "Q(x) :- transfer(x,y), transfer(y,z), transfer(z,x)."},
      {"padded_seed",  // cyclic-looking, but the existential triangle folds
                       // onto the self-loop: equivalent to an acyclic CQ
       "Q(x) :- seed(x), transfer(a,b), transfer(b,c), transfer(c,a), "
       "transfer(d,d)."},
      {"self_dealing", "Q(x) :- transfer(x,x). Q(x) :- seed(x)."},
  };

  std::printf("%-15s %-28s %-34s %s\n", "query", "class", "engine",
              "program contained?");
  for (const Entry& entry : workload) {
    auto ucq = ParseUcq(entry.text);
    if (!ucq.ok()) {
      std::fprintf(stderr, "%s: %s\n", entry.name,
                   ucq.status().ToString().c_str());
      continue;
    }
    auto classification = ClassifyUcq(*ucq);
    std::string klass = DescribeClassification(*classification);
    // Try the H(ACk) normalization for cyclic queries (Proposition 3).
    if (!classification->acyclic) {
      auto norm = NormalizeIntoAck(*ucq);
      if (norm.ok() && norm->in_hack) {
        klass += ", in H(AC" + std::to_string(norm->level) + ")";
        ucq = *norm->normalized;  // containment is invariant modulo ≡
      }
    }
    auto routed = DecideContainment(*program, *ucq);
    if (!routed.ok()) {
      std::fprintf(stderr, "%s: %s\n", entry.name,
                   routed.status().ToString().c_str());
      continue;
    }
    std::printf("%-15s %-28s %-34s %s\n", entry.name, klass.c_str(),
                RouteName(routed->route),
                routed->answer.contained ? "yes" : "no");
  }
  return 0;
}

// E6 — Propositions 3/4: H(ACk) — containment modulo equivalence. The
// normalization (drop subsumed disjuncts, take cores) is NP-hard in
// principle; the series measures its cost on increasingly padded queries
// and the payoff: after normalization the EXPTIME engine applies.

#include <benchmark/benchmark.h>

#include "bench/workloads.h"
#include "core/hack.h"
#include "cq/core.h"

namespace qcont {
namespace {

// A padded query: an acyclic core (chain of length 2) plus `pad` existential
// triangle gadgets, each dominated by a self-loop, so everything folds away.
UnionQuery PaddedQuery(int pad) {
  std::vector<Atom> atoms;
  atoms.emplace_back("e", std::vector<Term>{Term::Variable("x"),
                                            Term::Variable("m")});
  atoms.emplace_back("e", std::vector<Term>{Term::Variable("m"),
                                            Term::Variable("y")});
  atoms.emplace_back("e", std::vector<Term>{Term::Variable("s"),
                                            Term::Variable("s")});
  for (int i = 0; i < pad; ++i) {
    std::string a = "a" + std::to_string(i), b = "b" + std::to_string(i),
                c = "c" + std::to_string(i);
    atoms.emplace_back("e", std::vector<Term>{Term::Variable(a), Term::Variable(b)});
    atoms.emplace_back("e", std::vector<Term>{Term::Variable(b), Term::Variable(c)});
    atoms.emplace_back("e", std::vector<Term>{Term::Variable(c), Term::Variable(a)});
  }
  return UnionQuery({ConjunctiveQuery(
      {Term::Variable("x"), Term::Variable("y")}, std::move(atoms))});
}

void BM_CoreComputation(benchmark::State& state) {
  const int pad = static_cast<int>(state.range(0));
  UnionQuery ucq = PaddedQuery(pad);
  std::size_t core_atoms = 0;
  for (auto _ : state) {
    auto core = CoreOf(ucq.disjuncts().front());
    core_atoms = core->atoms().size();
    benchmark::DoNotOptimize(core_atoms);
  }
  state.counters["original_atoms"] =
      static_cast<double>(ucq.disjuncts().front().atoms().size());
  state.counters["core_atoms"] = static_cast<double>(core_atoms);
}
BENCHMARK(BM_CoreComputation)->DenseRange(0, 4, 1);

void BM_NormalizeIntoAck(benchmark::State& state) {
  const int pad = static_cast<int>(state.range(0));
  UnionQuery ucq = PaddedQuery(pad);
  bool in_hack = false;
  int level = 0;
  for (auto _ : state) {
    auto norm = NormalizeIntoAck(ucq);
    in_hack = norm->in_hack;
    level = norm->level;
  }
  state.counters["in_hack"] = in_hack;
  state.counters["level"] = level;
}
BENCHMARK(BM_NormalizeIntoAck)->DenseRange(0, 4, 1);

// End-to-end CONT(Datalog, H(ACk)): normalize then run the ACk engine.
void BM_ContainmentViaHAck(benchmark::State& state) {
  const int pad = static_cast<int>(state.range(0));
  DatalogProgram tc = bench::TcProgram();
  UnionQuery ucq = PaddedQuery(pad);
  bool contained = true;
  for (auto _ : state) {
    contained = DatalogContainedInHAck(tc, ucq)->contained;
  }
  state.counters["contained"] = contained;  // expansions lack the self-loop
}
BENCHMARK(BM_ContainmentViaHAck)->DenseRange(0, 3, 1);

// Subsumed-disjunct minimization at growing union sizes.
void BM_UnionMinimization(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  std::vector<ConjunctiveQuery> disjuncts;
  for (int len = 1; len <= m; ++len) {
    disjuncts.push_back(bench::ChainCq(len, "e", 1));  // each ⊆ the previous
  }
  UnionQuery ucq(std::move(disjuncts));
  std::size_t kept = 0;
  for (auto _ : state) {
    auto norm = NormalizeIntoAck(ucq);
    kept = norm->normalized->disjuncts().size();
  }
  state.counters["kept_disjuncts"] = static_cast<double>(kept);
}
BENCHMARK(BM_UnionMinimization)->DenseRange(2, 8, 2);

}  // namespace
}  // namespace qcont

BENCHMARK_MAIN();

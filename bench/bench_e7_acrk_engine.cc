// E7 — Theorem 9: CONT(Datalog, ACRk) in EXPTIME. Series: the ACRk engine
// on graph-database workloads, scaling (a) the regular expressions, (b) the
// program's recursion stride, with the summary/antichain counters as the
// complexity signal.

#include <benchmark/benchmark.h>

#include <string>

#include "bench/workloads.h"
#include "core/acrk_containment.h"
#include "parser/parser.h"

namespace qcont {
namespace {

// TC over `e` against [e+]: contained; regex automaton padded with a chain
// of optional symbols to scale the NFA.
void BM_TcInPaddedRegex(benchmark::State& state) {
  const int pad = static_cast<int>(state.range(0));
  DatalogProgram tc = bench::TcProgram();
  std::string pattern = "e+";
  for (int i = 0; i < pad; ++i) pattern += " e?";
  auto gamma = ParseUC2rpq("Q(x,y) :- [" + pattern + "](x,y).");
  AcrkEngineStats stats;
  bool contained = false;
  for (auto _ : state) {
    stats = AcrkEngineStats();
    contained = DatalogContainedInAcyclicUC2rpq(tc, *gamma, &stats)->contained;
  }
  state.counters["contained"] = contained;
  state.counters["summaries"] = static_cast<double>(stats.summaries);
  state.counters["game_states"] = static_cast<double>(stats.game_states);
}
BENCHMARK(BM_TcInPaddedRegex)->DenseRange(0, 8, 2);

// Stride program (chains of length ≡ 1 mod m) against [e e* ]: contained;
// the stride scales the proof-tree alphabet.
void BM_StrideInStar(benchmark::State& state) {
  const int stride = static_cast<int>(state.range(0));
  DatalogProgram program = bench::StrideProgram(stride);
  auto gamma = ParseUC2rpq("Q(x,y) :- [e e*](x,y).");
  AcrkEngineStats stats;
  bool contained = false;
  for (auto _ : state) {
    stats = AcrkEngineStats();
    contained =
        DatalogContainedInAcyclicUC2rpq(program, *gamma, &stats)->contained;
  }
  state.counters["contained"] = contained;
  state.counters["summaries"] = static_cast<double>(stats.summaries);
}
BENCHMARK(BM_StrideInStar)->DenseRange(1, 5, 1);

// Refuted instance: stride-2 chains against even-length-only paths — the
// length-1 expansion escapes; witness extraction included in the cost.
void BM_ParityRefutation(benchmark::State& state) {
  const int stride = static_cast<int>(state.range(0));
  DatalogProgram program = bench::StrideProgram(stride);
  auto gamma = ParseUC2rpq("Q(x,y) :- [e e (e e)*](x,y).");
  AcrkEngineStats stats;
  bool contained = true;
  for (auto _ : state) {
    stats = AcrkEngineStats();
    contained =
        DatalogContainedInAcyclicUC2rpq(program, *gamma, &stats)->contained;
  }
  state.counters["contained"] = contained;
  state.counters["summaries"] = static_cast<double>(stats.summaries);
}
BENCHMARK(BM_ParityRefutation)->DenseRange(1, 4, 1);

// Variable-tree depth: Γ is a path of star-labeled edges x0 -[e*]- x1
// -[e*]- ... of length d (strongly acyclic, ACR1).
void BM_DeepVariableTree(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  DatalogProgram tc = bench::TcProgram();
  std::string text = "Q(x0,x" + std::to_string(depth) + ") :- ";
  for (int i = 0; i < depth; ++i) {
    if (i > 0) text += ", ";
    text += "[e*](x" + std::to_string(i) + ",x" + std::to_string(i + 1) + ")";
  }
  text += ".";
  auto gamma = ParseUC2rpq(text);
  AcrkEngineStats stats;
  bool contained = false;
  for (auto _ : state) {
    stats = AcrkEngineStats();
    contained = DatalogContainedInAcyclicUC2rpq(tc, *gamma, &stats)->contained;
  }
  state.counters["contained"] = contained;
  state.counters["summaries"] = static_cast<double>(stats.summaries);
  state.counters["antichain_sets"] = static_cast<double>(stats.antichain_sets);
}
BENCHMARK(BM_DeepVariableTree)->DenseRange(1, 4, 1);

}  // namespace
}  // namespace qcont

BENCHMARK_MAIN();

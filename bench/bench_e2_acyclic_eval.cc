// E2b — Proposition 1 substrate: Yannakakis evaluation over HW(1) = AC
// workloads. The series stress the three storage hot paths of the flat
// columnar layout: per-atom candidate builds (index probes), the upward
// semijoin passes (key hashing over arena rows), and the head-candidate
// enumeration loop of full evaluation (one satisfiability pass per
// candidate assignment).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <random>

#include "analysis/report.h"
#include "bench/workloads.h"
#include "cq/database.h"
#include "obs/obs.h"
#include "structure/acyclic_eval.h"

namespace qcont {
namespace {

// Boolean chain CQ over a random edge graph: the satisfiability-only path
// (upward semijoin reduction, no enumeration). Headline series; n=64 is the
// acceptance point for the storage-layout work.
void BM_AcyclicSatChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937 rng(42);
  Database db = bench::RandomEdgeDatabase(&rng, n, 4 * n);
  ConjunctiveQuery cq = bench::ChainCq(8);
  YannakakisStats stats;
  bool sat = false;
  for (auto _ : state) {
    stats = YannakakisStats();
    sat = *AcyclicSatisfiable(cq, db, {}, &stats);
  }
  state.counters["sat"] = sat ? 1 : 0;
  state.counters["semijoins"] = static_cast<double>(stats.semijoins);
  state.counters["tuples_scanned"] = static_cast<double>(stats.tuples_scanned);
  state.counters["index_probes"] = static_cast<double>(stats.index_probes);
  state.counters["db_probes"] = static_cast<double>(db.index_stats().probes);
  // Analysis overhead (untimed instrumentation): the routed evaluation
  // entry points consult the AnalysisReport cache per call; `analysis_pct`
  // prices that warm consult against one engine pass and is gated < 5% by
  // check_bench_regression.py --max-counter in CI. The cold report build
  // (certificate construction + verification) is reported separately.
  {
    const UnionQuery ucq({cq});
    analysis::ClearGlobalAnalysisCache();
    analysis::RoutingOptions routing;
    state.counters["t_analysis_cold_us"] = bench::WallMicrosPerCall(1, [&] {
      benchmark::DoNotOptimize(analysis::AnalyzeForRouting(ucq, routing));
    });
    const double t_analysis = bench::WallMicrosPerCall(64, [&] {
      benchmark::DoNotOptimize(analysis::AnalyzeForRouting(ucq, routing));
    });
    const double t_engine = bench::WallMicrosPerCall(16, [&] {
      benchmark::DoNotOptimize(*AcyclicSatisfiable(cq, db));
    });
    state.counters["t_analysis_us"] = t_analysis;
    state.counters["analysis_pct"] =
        100.0 * t_analysis / std::max(t_engine, 1e-6);
  }
}
BENCHMARK(BM_AcyclicSatChain)->RangeMultiplier(2)->Range(8, 64);

// Full evaluation (head enumeration): one free endpoint, so the candidate
// loop runs one Yannakakis pass per candidate head value — the path the
// compiled-query reuse and arena-backed semijoins accelerate most.
void BM_AcyclicEvalChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937 rng(7);
  Database db = bench::RandomEdgeDatabase(&rng, n, 3 * n);
  ConjunctiveQuery cq = bench::ChainCq(4, "e", 1);
  YannakakisStats stats;
  std::size_t answers = 0;
  for (auto _ : state) {
    stats = YannakakisStats();
    answers = EvaluateAcyclicCq(cq, db, &stats)->size();
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["semijoins"] = static_cast<double>(stats.semijoins);
  state.counters["tuples_scanned"] = static_cast<double>(stats.tuples_scanned);
  state.counters["index_probes"] = static_cast<double>(stats.index_probes);
  // Probe-kernel counters (DESIGN.md §16), cumulative on the shared
  // database over the run. This is the E2 series that drives the db probe
  // tables (the satisfiability series run pure semijoin passes), so CI
  // gates probe_tag_hits > 0 here via --min-counter to pin the tag filter
  // as engaged.
  {
    const DatabaseIndexStats idx = db.index_stats();
    state.counters["probe_tag_hits"] = static_cast<double>(idx.tag_hits);
    state.counters["probe_tag_skips"] = static_cast<double>(idx.tag_skips);
    state.counters["probe_filter_skips"] =
        static_cast<double>(idx.filter_skips);
  }
}
BENCHMARK(BM_AcyclicEvalChain)->RangeMultiplier(2)->Range(8, 64);

// Star query (one center joined to k rays): wide semijoin fan-in at the
// root bag, the case where per-probe key allocations used to dominate.
void BM_AcyclicSatStar(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937 rng(11);
  Database db = bench::RandomEdgeDatabase(&rng, n, 4 * n);
  std::vector<Atom> atoms;
  for (int i = 0; i < 6; ++i) {
    atoms.emplace_back(
        "e", std::vector<Term>{Term::Variable("c"),
                               Term::Variable("y" + std::to_string(i))});
  }
  ConjunctiveQuery star({}, std::move(atoms));
  YannakakisStats stats;
  bool sat = false;
  for (auto _ : state) {
    stats = YannakakisStats();
    sat = *AcyclicSatisfiable(star, db, {}, &stats);
  }
  state.counters["sat"] = sat ? 1 : 0;
  state.counters["semijoins"] = static_cast<double>(stats.semijoins);
  state.counters["tuples_scanned"] = static_cast<double>(stats.tuples_scanned);
}
BENCHMARK(BM_AcyclicSatStar)->RangeMultiplier(2)->Range(8, 64);

// UCQ containment with acyclic right-hand side (Sagiv-Yannakakis over
// CqContainedAcyclicRhs): canonical-database construction plus fixed-head
// satisfiability — the containment-facing face of the same substrate.
void BM_UcqContainmentAcyclicRhs(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<ConjunctiveQuery> lhs_cqs, rhs_cqs;
  for (int i = 0; i < 2; ++i) {
    lhs_cqs.push_back(bench::ChainCq(2 * n + 2 * i, "e", 1));
  }
  rhs_cqs.push_back(bench::ChainCq(2 * n + 4, "e", 1));  // refuted
  rhs_cqs.push_back(bench::ChainCq(n, "e", 1));          // folds in
  UnionQuery lhs(lhs_cqs), rhs(rhs_cqs);
  YannakakisStats stats;
  bool contained = false;
  for (auto _ : state) {
    stats = YannakakisStats();
    contained = *UcqContainedAcyclicRhs(lhs, rhs, &stats);
  }
  state.counters["contained"] = contained ? 1 : 0;
  state.counters["semijoins"] = static_cast<double>(stats.semijoins);
  state.counters["tuples_scanned"] = static_cast<double>(stats.tuples_scanned);
  state.counters["index_probes"] = static_cast<double>(stats.index_probes);
}
BENCHMARK(BM_UcqContainmentAcyclicRhs)->RangeMultiplier(2)->Range(8, 64);

}  // namespace
}  // namespace qcont

BENCHMARK_MAIN();

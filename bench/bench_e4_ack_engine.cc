// E4 — Theorem 6: the EXPTIME ACk engine against the 2EXPTIME general
// engine on the *same* acyclic inputs. The paper's headline: restricting Θ
// to ACk replaces the doubly-exponential procedure by a single-exponential
// one. The shape to observe: both solve small instances, but the general
// engine's `types` counter grows much faster than the ACk engine's
// `summaries` as the UCQ grows, and the crossover favors ACk throughout.

#include <benchmark/benchmark.h>

#include "bench/workloads.h"
#include "core/ack_containment.h"
#include "core/datalog_ucq.h"

namespace qcont {
namespace {

void BM_General_TcVsChains(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  DatalogProgram tc = bench::TcProgram();
  UnionQuery ucq = bench::ChainUnion(m);
  TypeEngineStats stats;
  for (auto _ : state) {
    stats = TypeEngineStats();
    benchmark::DoNotOptimize(*DatalogContainedInUcq(tc, ucq, &stats));
  }
  state.counters["state_objects"] = static_cast<double>(stats.types);
}
BENCHMARK(BM_General_TcVsChains)->DenseRange(1, 5, 1);

void BM_Ack_TcVsChains(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  DatalogProgram tc = bench::TcProgram();
  UnionQuery ucq = bench::ChainUnion(m);
  AckEngineStats stats;
  for (auto _ : state) {
    stats = AckEngineStats();
    benchmark::DoNotOptimize(*DatalogContainedInAcyclicUcq(tc, ucq, &stats));
  }
  state.counters["state_objects"] = static_cast<double>(stats.summaries);
  state.counters["antichain_sets"] = static_cast<double>(stats.antichain_sets);
  state.counters["k"] = stats.ack_level;
}
BENCHMARK(BM_Ack_TcVsChains)->DenseRange(1, 5, 1);

// A contained family: the stride-1 program is exactly e+; the UCQ
// "first edge + anything" contains it. Scales the program's rule width.
void MakeContainedFamily(int width, DatalogProgram* program, UnionQuery* ucq) {
  *program = bench::StrideProgram(width);
  std::vector<ConjunctiveQuery> disjuncts;
  disjuncts.push_back(bench::ChainCq(1, "e", 2));
  // (x,y) <- e(x,u), e(w,y): matches every expansion of length >= 2.
  disjuncts.push_back(ConjunctiveQuery(
      {Term::Variable("a0"), Term::Variable("a3")},
      {Atom("e", {Term::Variable("a0"), Term::Variable("a1")}),
       Atom("e", {Term::Variable("a2"), Term::Variable("a3")})}));
  *ucq = UnionQuery(std::move(disjuncts));
}

void BM_General_ContainedFamily(benchmark::State& state) {
  DatalogProgram program = bench::TcProgram();
  UnionQuery ucq({bench::ChainCq(1)});
  MakeContainedFamily(static_cast<int>(state.range(0)), &program, &ucq);
  TypeEngineStats stats;
  bool contained = false;
  for (auto _ : state) {
    stats = TypeEngineStats();
    contained = DatalogContainedInUcq(program, ucq, &stats)->contained;
  }
  state.counters["contained"] = contained;
  state.counters["state_objects"] = static_cast<double>(stats.types);
}
BENCHMARK(BM_General_ContainedFamily)->DenseRange(1, 6, 1);

void BM_Ack_ContainedFamily(benchmark::State& state) {
  DatalogProgram program = bench::TcProgram();
  UnionQuery ucq({bench::ChainCq(1)});
  MakeContainedFamily(static_cast<int>(state.range(0)), &program, &ucq);
  AckEngineStats stats;
  bool contained = false;
  for (auto _ : state) {
    stats = AckEngineStats();
    contained = DatalogContainedInAcyclicUcq(program, ucq, &stats)->contained;
  }
  state.counters["contained"] = contained;
  state.counters["state_objects"] = static_cast<double>(stats.summaries);
}
BENCHMARK(BM_Ack_ContainedFamily)->DenseRange(1, 6, 1);

// The separating family: a star UCQ with f independent fan atoms around the
// free variable. The general engine's types are exact sets of partial-match
// elements, and the f fan atoms can be matched in any subset — 2^f element
// growth. The ACk engine walks the star's join tree one atom per play and
// never materializes subsets of atoms.
UnionQuery StarFanUcq(int fan) {
  std::vector<Atom> atoms;
  atoms.emplace_back("e", std::vector<Term>{Term::Variable("x"),
                                            Term::Variable("y")});
  for (int i = 0; i < fan; ++i) {
    atoms.emplace_back("e", std::vector<Term>{
                                Term::Variable("x"),
                                Term::Variable("u" + std::to_string(i))});
  }
  return UnionQuery({ConjunctiveQuery(
      {Term::Variable("x"), Term::Variable("y")}, std::move(atoms))});
}

void BM_General_StarFanout(benchmark::State& state) {
  const int fan = static_cast<int>(state.range(0));
  DatalogProgram tc = bench::TcProgram();
  UnionQuery ucq = StarFanUcq(fan);
  TypeEngineStats stats;
  for (auto _ : state) {
    stats = TypeEngineStats();
    benchmark::DoNotOptimize(*DatalogContainedInUcq(tc, ucq, &stats));
  }
  state.counters["elements"] = static_cast<double>(stats.elements);
  state.counters["state_objects"] = static_cast<double>(stats.types);
}
BENCHMARK(BM_General_StarFanout)->DenseRange(2, 12, 2);

void BM_Ack_StarFanout(benchmark::State& state) {
  const int fan = static_cast<int>(state.range(0));
  DatalogProgram tc = bench::TcProgram();
  UnionQuery ucq = StarFanUcq(fan);
  AckEngineStats stats;
  for (auto _ : state) {
    stats = AckEngineStats();
    benchmark::DoNotOptimize(*DatalogContainedInAcyclicUcq(tc, ucq, &stats));
  }
  state.counters["antichain_sets"] = static_cast<double>(stats.antichain_sets);
  state.counters["state_objects"] = static_cast<double>(stats.summaries);
}
BENCHMARK(BM_Ack_StarFanout)->DenseRange(2, 12, 2);

// Ablation: the cost of increasing k (shared variables between atoms) with
// everything else fixed — the hierarchy inside AC from Section 4.2. The
// UCQ's two atoms share k variables through a wide predicate.
void BM_Ack_SharedVariableWidth(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  // Program: p(x) <- t(x, y1..yk), base m(y1..yk); recursion through m.
  std::vector<Term> ys;
  for (int i = 0; i < k; ++i) ys.push_back(Term::Variable("y" + std::to_string(i)));
  std::vector<Term> head_args = {Term::Variable("x")};
  std::vector<Term> t_args = head_args;
  t_args.insert(t_args.end(), ys.begin(), ys.end());
  std::vector<Rule> rules;
  rules.push_back(Rule{Atom("p", {Term::Variable("x")}),
                       {Atom("t", t_args), Atom("m", ys)}});
  std::vector<Atom> rec_body = {Atom("t", t_args), Atom("m", ys),
                                Atom("p", {ys[0]})};
  rules.push_back(Rule{Atom("p", {Term::Variable("x")}), rec_body});
  DatalogProgram program(std::move(rules), "p");
  // UCQ: Q(x) <- t(x, u1..uk), m(u1..uk): two atoms sharing k variables.
  std::vector<Term> us;
  for (int i = 0; i < k; ++i) us.push_back(Term::Variable("u" + std::to_string(i)));
  std::vector<Term> tu = {Term::Variable("x")};
  tu.insert(tu.end(), us.begin(), us.end());
  UnionQuery ucq({ConjunctiveQuery({Term::Variable("x")},
                                   {Atom("t", tu), Atom("m", us)})});
  AckEngineStats stats;
  bool contained = false;
  for (auto _ : state) {
    stats = AckEngineStats();
    contained = DatalogContainedInAcyclicUcq(program, ucq, &stats)->contained;
  }
  state.counters["contained"] = contained;
  state.counters["k"] = stats.ack_level;
  state.counters["game_states"] = static_cast<double>(stats.game_states);
}
BENCHMARK(BM_Ack_SharedVariableWidth)->DenseRange(1, 4, 1);

}  // namespace
}  // namespace qcont

BENCHMARK_MAIN();

// E10 — program-keyed kind-space memoization (DESIGN.md §18): one hot Π,
// sweeping Θ. The HotProgram family makes the Π-only expansion the dominant
// cost (2^(arity-1) kinds × n rule instantiations) while each containment
// call's Θ-side fixpoint stays shallow, which is exactly the server regime
// the ProgramArtifactCache targets: a repeated program tested against a
// stream of fresh queries. Cold rows rebuild the artifact every call; warm
// rows fetch it from the cache, so Cold/Warm at equal n prices the
// memoization (gated ≥2x at n=64 by check_bench_regression.py --min-ratio).

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "bench/workloads.h"
#include "core/datalog_ucq.h"
#include "core/program_artifact_cache.h"
#include "obs/obs.h"

namespace qcont {
namespace {

// 2^(kArity-1) = 128 reachable kinds; rows sweep the rule count, so the
// per-call expansion cost grows with n while the fixpoint stays flat.
constexpr int kArity = 8;

// The Θ sweep: every iteration tests the next variant, so a row's time is
// the mean over the pool — no iteration ever repeats a (Π, Θ) *verdict*,
// only the program.
std::vector<UnionQuery> ThetaPool() {
  std::vector<UnionQuery> pool;
  for (int extras = 0; extras < 4; ++extras) {
    pool.push_back(bench::HotTheta(kArity, extras));
  }
  return pool;
}

// Engine counters summed over one full Θ sweep, untimed. By the freeze
// contract these are identical for the cold and warm rows (the differential
// test asserts exact equality per call), so a drift between the two rows'
// counter columns flags an artifact-path bug before any timing does.
void ReportSweepCounters(benchmark::State& state, const DatalogProgram& pi,
                         const std::vector<UnionQuery>& thetas,
                         const TypeEngineOptions& options) {
  TypeEngineStats stats;
  bool contained = false;
  for (const UnionQuery& theta : thetas) {
    TypeEngineStats run;
    contained = DatalogContainedInUcq(pi, theta, &run, options)->contained;
    stats.combos += run.combos;
    stats.enumeration_steps += run.enumeration_steps;
    stats.kinds = run.kinds;
  }
  state.counters["contained"] = contained ? 1 : 0;
  state.counters["kinds"] = static_cast<double>(stats.kinds);
  state.counters["combos"] = static_cast<double>(stats.combos);
  state.counters["enumeration_steps"] =
      static_cast<double>(stats.enumeration_steps);
}

// Cold path: every call pays the full Π-only expansion (a private artifact
// is built per call; this is the exact pre-memoization engine behavior, and
// the counters are bit-identical with the warm row's by the freeze
// contract).
void BM_HotProgramCold(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const DatalogProgram pi = bench::HotProgram(kArity, n);
  const std::vector<UnionQuery> thetas = ThetaPool();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DatalogContainedInUcq(pi, thetas[i++ % thetas.size()])->contained);
  }
  ReportSweepCounters(state, pi, thetas, TypeEngineOptions());
}
BENCHMARK(BM_HotProgramCold)->RangeMultiplier(2)->Range(8, 64);

// Warm path: the artifact cache is primed once, then every call fetches the
// frozen expansion and goes straight to the Θ-dependent product
// construction. QCONT_BENCH_NO_ARTIFACT=1 sizes the cache at zero —
// every call misses and builds privately — which is how the committed
// "before" capture pins this row to pre-memoization behavior with the
// same binary and row names.
void BM_HotProgramWarm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const DatalogProgram pi = bench::HotProgram(kArity, n);
  const std::vector<UnionQuery> thetas = ThetaPool();
  const bool disabled = std::getenv("QCONT_BENCH_NO_ARTIFACT") != nullptr;
  ProgramArtifactCacheConfig config;
  config.capacity = disabled ? 0 : 4;
  ProgramArtifactCache cache(config);
  TypeEngineOptions options;
  options.artifact_cache = &cache;
  // Prime outside the timed loop: the first call is the one cold build.
  benchmark::DoNotOptimize(
      DatalogContainedInUcq(pi, thetas[0], nullptr, options)->contained);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DatalogContainedInUcq(pi, thetas[i++ % thetas.size()], nullptr,
                              options)
            ->contained);
  }
  ReportSweepCounters(state, pi, thetas, options);
  const ProgramArtifactCacheStats cstats = cache.stats();
  state.counters["artifact_hits"] = static_cast<double>(cstats.hits);
  state.counters["artifact_misses"] = static_cast<double>(cstats.misses);
  state.counters["artifact_bytes"] = static_cast<double>(cstats.bytes);
}
BENCHMARK(BM_HotProgramWarm)->RangeMultiplier(2)->Range(8, 64);

// The memoized quantity in isolation: one full Π-only expansion (kind-space
// closure + probe tables). Cold ≈ Warm + Build at every n; drift in that
// identity is the first thing to check if the Cold/Warm ratio regresses.
void BM_ArtifactBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const DatalogProgram pi = bench::HotProgram(kArity, n);
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto artifact = ProgramArtifact::Build(pi);
    bytes = artifact->ApproxBytes();
    benchmark::DoNotOptimize(artifact);
  }
  state.counters["artifact_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_ArtifactBuild)->RangeMultiplier(2)->Range(8, 64);

}  // namespace
}  // namespace qcont

BENCHMARK_MAIN();

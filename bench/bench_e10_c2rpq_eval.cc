// E10 — substrate benchmark: (acyclic) C2RPQ evaluation over graph
// databases [Section 5.2 / reference 3 of the paper]. Generic NP
// backtracking vs the Yannakakis-based acyclic evaluator over the
// materialized 2RPQ relations, plus the raw product-BFS 2RPQ primitive.

#include <benchmark/benchmark.h>

#include <random>
#include <string>

#include "automata/nfa.h"
#include "graphdb/c2rpq.h"
#include "graphdb/graph_db.h"
#include "graphdb/rpq.h"
#include "parser/parser.h"

namespace qcont {
namespace {

GraphDatabase RandomGraph(int nodes, int edges_per_label, unsigned seed) {
  std::mt19937 rng(seed);
  GraphDatabase g;
  for (const char* label : {"a", "b"}) {
    for (int i = 0; i < edges_per_label; ++i) {
      g.AddEdge("n" + std::to_string(rng() % nodes), label,
                "n" + std::to_string(rng() % nodes));
    }
  }
  return g;
}

void BM_RpqProductBfs(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  GraphDatabase g = RandomGraph(n, 2 * n, 7);
  auto nfa = ParseRegex("(a|b)* a");
  RpqEvalStats stats;
  std::size_t pairs = 0;
  for (auto _ : state) {
    stats = RpqEvalStats();
    pairs = EvaluateRpq(*nfa, g, &stats).size();
  }
  state.counters["pairs"] = static_cast<double>(pairs);
  state.counters["product_states"] = static_cast<double>(stats.product_states);
}
BENCHMARK(BM_RpqProductBfs)->DenseRange(8, 40, 8);

// Chain-shaped C2RPQ of m atoms over a random graph: generic vs acyclic.
std::string ChainC2rpq(int m) {
  std::string text = "Q(x0) :- ";
  for (int i = 0; i < m; ++i) {
    if (i > 0) text += ", ";
    text += std::string(i % 2 == 0 ? "[a+]" : "[b a*]") + "(x" +
            std::to_string(i) + ",x" + std::to_string(i + 1) + ")";
  }
  text += ".";
  return text;
}

void BM_C2rpqGeneric(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  GraphDatabase g = RandomGraph(16, 40, 11);
  auto q = ParseUC2rpq(ChainC2rpq(m));
  std::size_t answers = 0;
  for (auto _ : state) {
    answers = EvaluateC2rpq(q->disjuncts().front(), g)->size();
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_C2rpqGeneric)->DenseRange(1, 6, 1);

void BM_C2rpqAcyclic(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  GraphDatabase g = RandomGraph(16, 40, 11);
  auto q = ParseUC2rpq(ChainC2rpq(m));
  std::size_t answers = 0;
  for (auto _ : state) {
    answers = EvaluateAcyclicC2rpq(q->disjuncts().front(), g)->size();
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_C2rpqAcyclic)->DenseRange(1, 6, 1);

// Boolean star query with a growing fan of constraints on one center.
void BM_C2rpqStar(benchmark::State& state) {
  const int fan = static_cast<int>(state.range(0));
  GraphDatabase g = RandomGraph(16, 40, 13);
  std::string text = "Q() :- [a](c,l0)";
  for (int i = 1; i < fan; ++i) {
    text += ", [" + std::string(i % 2 == 0 ? "a b" : "b") + "](c,l" +
            std::to_string(i) + ")";
  }
  text += ".";
  auto q = ParseUC2rpq(text);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateAcyclicC2rpq(q->disjuncts().front(), g)->size());
  }
}
BENCHMARK(BM_C2rpqStar)->DenseRange(1, 5, 1);

}  // namespace
}  // namespace qcont

BENCHMARK_MAIN();

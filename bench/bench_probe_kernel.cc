// Probe-kernel microbenchmark (DESIGN.md §16): ProbeMany throughput on one
// flat index, swept over the three kernel knobs — table load factor ×
// probe-group width × Bloom filter on/off — and over the batch's hit rate
// (the filters only pay off on misses). Each row reports the db.probe.*
// counters per batch, so a capture records not just the speed but how the
// kernel got it (tag-filter skips, filter skips, prefetch batches). The
// label carries SimdKernelName() so a JSON capture states which vector
// implementation (sse2/neon/scalar) it measured.

#include <benchmark/benchmark.h>

#include <random>
#include <string>
#include <vector>

#include "base/simd.h"
#include "bench/workloads.h"
#include "cq/database.h"

namespace qcont {
namespace {

// One arity-2 relation with `rows` random edges over a node space twice as
// large, probed on the first column (mask 0b01). Key batches mix resident
// first-column values with interned-but-absent values at `hit_pct`.
struct ProbeFixture {
  Database db;
  RelationId rel = kNoRelation;
  std::vector<ValueId> keys;

  ProbeFixture(int rows, int hit_pct, const ProbeOptions& options) {
    std::mt19937 rng(11);
    for (int i = 0; i < rows; ++i) {
      db.AddFact("e", {"n" + std::to_string(rng() % (2 * rows)),
                       "n" + std::to_string(rng() % (2 * rows))});
    }
    db.set_probe_options(options);
    rel = db.RelationIdOf("e");
    keys.reserve(rows);
    for (int i = 0; i < rows; ++i) {
      if (static_cast<int>(rng() % 100) < hit_pct) {
        keys.push_back(db.Row(rel, rng() % db.NumRows(rel))[0]);
      } else {
        // Interned but never inserted: a guaranteed miss the Bloom filter
        // can answer without touching the table.
        keys.push_back(db.pool()->Intern("miss" + std::to_string(i)));
      }
    }
  }
};

void BM_ProbeManyKnobs(benchmark::State& state) {
  ProbeOptions options;
  options.max_load_percent = static_cast<int>(state.range(0));
  options.group_width = static_cast<int>(state.range(1));
  options.use_filters = state.range(2) != 0;
  const int hit_pct = static_cast<int>(state.range(3));
  ProbeFixture fx(/*rows=*/4096, hit_pct, options);
  std::vector<std::span<const std::uint32_t>> hits(fx.keys.size());
  // One untimed batch builds the index outside the timed loop.
  fx.db.ProbeMany(fx.rel, 0b01u, fx.keys, hits);
  const DatabaseIndexStats before = fx.db.index_stats();
  for (auto _ : state) {
    hits.assign(fx.keys.size(), {});
    fx.db.ProbeMany(fx.rel, 0b01u, fx.keys, hits);
    benchmark::DoNotOptimize(hits.data());
  }
  const DatabaseIndexStats after = fx.db.index_stats();
  const double iters = static_cast<double>(state.iterations());
  state.counters["keys"] = static_cast<double>(fx.keys.size());
  state.counters["probes"] =
      static_cast<double>(after.probes - before.probes) / iters;
  state.counters["probe_tag_hits"] =
      static_cast<double>(after.tag_hits - before.tag_hits) / iters;
  state.counters["probe_tag_skips"] =
      static_cast<double>(after.tag_skips - before.tag_skips) / iters;
  state.counters["probe_filter_skips"] =
      static_cast<double>(after.filter_skips - before.filter_skips) / iters;
  state.counters["probe_prefetch_batches"] =
      static_cast<double>(after.prefetch_batches - before.prefetch_batches) /
      iters;
  state.SetLabel(std::string(SimdKernelName()) + "/load" +
                 std::to_string(state.range(0)) + "/w" +
                 std::to_string(state.range(1)) +
                 (options.use_filters ? "/filters" : "/nofilters"));
}
// load factor {40, 75, 90} × group width {8, 16} × filters {off, on} at a
// half-hit batch, plus the all-miss and all-hit extremes at the defaults.
void ProbeKnobArgs(benchmark::internal::Benchmark* b) {
  for (int load : {40, 75, 90}) {
    for (int width : {8, 16}) {
      for (int filters : {0, 1}) {
        b->Args({load, width, filters, 50});
      }
    }
  }
  for (int hit_pct : {0, 100}) {
    for (int filters : {0, 1}) {
      b->Args({75, 16, filters, hit_pct});
    }
  }
}
BENCHMARK(BM_ProbeManyKnobs)->Apply(ProbeKnobArgs);

// Prefetch-distance sweep at the default knobs: distance 1 degenerates to
// probe-at-a-time, larger distances overlap more slot-line fetches.
void BM_ProbeManyPrefetch(benchmark::State& state) {
  ProbeOptions options;
  options.prefetch_distance = static_cast<int>(state.range(0));
  ProbeFixture fx(/*rows=*/4096, /*hit_pct=*/50, options);
  std::vector<std::span<const std::uint32_t>> hits(fx.keys.size());
  fx.db.ProbeMany(fx.rel, 0b01u, fx.keys, hits);
  const DatabaseIndexStats before = fx.db.index_stats();
  for (auto _ : state) {
    hits.assign(fx.keys.size(), {});
    fx.db.ProbeMany(fx.rel, 0b01u, fx.keys, hits);
    benchmark::DoNotOptimize(hits.data());
  }
  const DatabaseIndexStats after = fx.db.index_stats();
  state.counters["probe_prefetch_batches"] =
      static_cast<double>(after.prefetch_batches - before.prefetch_batches) /
      static_cast<double>(state.iterations());
  state.SetLabel(SimdKernelName());
}
BENCHMARK(BM_ProbeManyPrefetch)->Arg(1)->Arg(4)->Arg(8)->Arg(32);

}  // namespace
}  // namespace qcont

BENCHMARK_MAIN();

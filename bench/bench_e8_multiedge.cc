// E8 — the ACR vs ACRk boundary (Theorems 8/9, Proposition 5): the number
// k of atoms connecting one variable pair is the source of hardness for
// acyclic UC2RPQs. The engine stays exact for any k, but its state space
// (multiedge states track k NFAs and k bindings simultaneously) grows
// exponentially with k — exactly the paper's EXPTIME-per-fixed-k /
// 2EXPTIME-in-general message, observable in the counters.

#include <benchmark/benchmark.h>

#include <string>

#include "bench/workloads.h"
#include "core/acrk_containment.h"
#include "parser/parser.h"

namespace qcont {
namespace {

// k parallel constraints between x and y; the program satisfies all of them.
void BM_ParallelAtoms(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  DatalogProgram tc = bench::TcProgram();
  std::string text = "Q(x,y) :- ";
  for (int i = 0; i < k; ++i) {
    if (i > 0) text += ", ";
    text += "[e e*](x,y)";  // all k bundles hold for every tc pair
  }
  text += ".";
  auto gamma = ParseUC2rpq(text);
  AcrkEngineStats stats;
  bool contained = false;
  for (auto _ : state) {
    stats = AcrkEngineStats();
    contained = DatalogContainedInAcyclicUC2rpq(tc, *gamma, &stats)->contained;
  }
  state.counters["contained"] = contained;
  state.counters["k"] = stats.acrk_level;
  state.counters["summaries"] = static_cast<double>(stats.summaries);
  state.counters["game_states"] = static_cast<double>(stats.game_states);
}
BENCHMARK(BM_ParallelAtoms)->DenseRange(1, 3, 1);

// Opposing multiedges with inverses: x reaches y forwards and y reaches x
// via the inverse bundle (as in Examples 5/6).
void BM_OpposingBundle(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  DatalogProgram tc = bench::TcProgram();
  std::string text = "Q(x,y) :- [e+](x,y)";
  for (int i = 1; i < k; ++i) text += ", [e- e-*](y,x)";
  text += ".";
  auto gamma = ParseUC2rpq(text);
  AcrkEngineStats stats;
  bool contained = true;
  for (auto _ : state) {
    stats = AcrkEngineStats();
    contained = DatalogContainedInAcyclicUC2rpq(tc, *gamma, &stats)->contained;
  }
  state.counters["contained"] = contained;
  state.counters["k"] = stats.acrk_level;
  state.counters["game_states"] = static_cast<double>(stats.game_states);
}
BENCHMARK(BM_OpposingBundle)->DenseRange(1, 3, 1);

// Control: strongly acyclic (ACR1) queries of the same total size — the
// paper's tractable frontier; cost grows mildly with query size.
void BM_StronglyAcyclicControl(benchmark::State& state) {
  const int atoms = static_cast<int>(state.range(0));
  DatalogProgram tc = bench::TcProgram();
  std::string text = "Q(x0,x1) :- [e+](x0,x1)";
  for (int i = 1; i < atoms; ++i) {
    text += ", [e*](x" + std::to_string(i) + ",x" + std::to_string(i + 1) + ")";
  }
  text += ".";
  auto gamma = ParseUC2rpq(text);
  AcrkEngineStats stats;
  bool contained = false;
  for (auto _ : state) {
    stats = AcrkEngineStats();
    contained = DatalogContainedInAcyclicUC2rpq(tc, *gamma, &stats)->contained;
  }
  state.counters["contained"] = contained;
  state.counters["k"] = stats.acrk_level;
  state.counters["game_states"] = static_cast<double>(stats.game_states);
}
BENCHMARK(BM_StronglyAcyclicControl)->DenseRange(1, 3, 1);

}  // namespace
}  // namespace qcont

BENCHMARK_MAIN();

// E3 — Theorem 2: the general CONT(Datalog, UCQ) engine (Chaudhuri-Vardi in
// type-automaton form). Series: runtime and reachable-type counts as the
// UCQ grows; the type space is the doubly-exponential object, so the
// `types`/`elements` counters are the machine-independent signal. Also
// exercises cyclic UCQs, which only this engine handles (Theorem 5 says
// restricting to TW(2)/HW(2) would not help).

#include <benchmark/benchmark.h>

#include "bench/workloads.h"
#include "core/datalog_ucq.h"

namespace qcont {
namespace {

// TC ⊆ union of chains of length 1..m — false for every m; the engine must
// explore the full type space to find the escaping expansion.
void BM_TcVsChainUnion(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  DatalogProgram tc = bench::TcProgram();
  UnionQuery ucq = bench::ChainUnion(m);
  TypeEngineStats stats;
  for (auto _ : state) {
    stats = TypeEngineStats();
    benchmark::DoNotOptimize(*DatalogContainedInUcq(tc, ucq, &stats));
  }
  state.counters["types"] = static_cast<double>(stats.types);
  state.counters["elements"] = static_cast<double>(stats.elements);
  state.counters["combos"] = static_cast<double>(stats.combos);
}
BENCHMARK(BM_TcVsChainUnion)->DenseRange(1, 5, 1);

// Stride program vs chain union: contained for stride 1, refuted otherwise;
// the stride scales the program side.
void BM_StrideVsChains(benchmark::State& state) {
  const int stride = static_cast<int>(state.range(0));
  DatalogProgram program = bench::StrideProgram(stride);
  UnionQuery ucq = bench::ChainUnion(2);
  TypeEngineStats stats;
  for (auto _ : state) {
    stats = TypeEngineStats();
    benchmark::DoNotOptimize(*DatalogContainedInUcq(program, ucq, &stats));
  }
  state.counters["types"] = static_cast<double>(stats.types);
  state.counters["enumeration_steps"] =
      static_cast<double>(stats.enumeration_steps);
}
BENCHMARK(BM_StrideVsChains)->DenseRange(1, 5, 1);

// Cyclic right-hand side (out of reach for the ACk engine): does some
// expansion of TC contain a k-cycle? Never, so containment fails with a
// one-edge witness; the cost is in the element enumeration over the cycle.
void BM_TcVsCycle(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  DatalogProgram tc = bench::TcProgram();
  std::vector<Atom> atoms;
  for (int i = 0; i < k; ++i) {
    atoms.emplace_back("e", std::vector<Term>{
                                Term::Variable("c" + std::to_string(i)),
                                Term::Variable("c" + std::to_string((i + 1) % k))});
  }
  // Make arities match: free endpoints via separate edge atoms.
  atoms.emplace_back("e", std::vector<Term>{Term::Variable("x"),
                                            Term::Variable("c0")});
  atoms.emplace_back("e", std::vector<Term>{Term::Variable("c0"),
                                            Term::Variable("y")});
  UnionQuery ucq({ConjunctiveQuery({Term::Variable("x"), Term::Variable("y")},
                                   std::move(atoms))});
  TypeEngineStats stats;
  for (auto _ : state) {
    stats = TypeEngineStats();
    benchmark::DoNotOptimize(*DatalogContainedInUcq(tc, ucq, &stats));
  }
  state.counters["types"] = static_cast<double>(stats.types);
  state.counters["elements"] = static_cast<double>(stats.elements);
}
BENCHMARK(BM_TcVsCycle)->DenseRange(3, 7, 1);

}  // namespace
}  // namespace qcont

BENCHMARK_MAIN();

#!/usr/bin/env bash
# Runs the Google Benchmark suites and writes BENCH_<suite>.json files.
#
# Usage:
#   bench/run_benchmarks.sh [-b BUILD_DIR] [-o OUT_DIR] [-s "SUITE ..."] \
#                           [--threads N] [extra benchmark args...]
#
#   -b BUILD_DIR   CMake build directory containing bench/ binaries (default: build)
#   -o OUT_DIR     directory the BENCH_*.json files are written to (default: repo root)
#   -s SUITES      space-separated suite names without the bench_ prefix
#                  (default: every suite below)
#   --threads N    worker count for the parallel benchmark rows, exported as
#                  QCONT_BENCH_THREADS (default: the binaries fall back to
#                  the hardware concurrency, floored at 2)
#   --shards LIST  comma-separated shard counts for the sharded-storage
#                  scaling rows (BM_TcWide), exported as QCONT_BENCH_SHARDS
#                  (default: the binaries use 1,4,16)
#   --trace        also write TRACE_<workload>.json Chrome trace files for
#                  the instrumented benchmark passes into OUT_DIR (exported
#                  as QCONT_BENCH_TRACE_DIR; validate/inspect with
#                  tools/check_trace.py or https://ui.perfetto.dev)
#
# Any remaining arguments are forwarded to each benchmark binary, e.g.
#   bench/run_benchmarks.sh -s "e1_ucq_containment e9_datalog_eval" --benchmark_min_time=0.05s
#
# The script exits nonzero if any benchmark binary crashes or is missing, so
# CI can gate on "benchmarks still run" without gating on timing.
set -euo pipefail

# Long options are split off before getopts (which would otherwise choke
# on them wherever they appear): --threads is consumed here, every other
# --flag is forwarded verbatim to the benchmark binaries.
filtered=()
passthrough=()
want_trace=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --threads)
      [[ $# -ge 2 ]] || { echo "ERROR: --threads needs a value" >&2; exit 2; }
      export QCONT_BENCH_THREADS="$2"
      shift 2
      ;;
    --threads=*)
      export QCONT_BENCH_THREADS="${1#*=}"
      shift
      ;;
    --shards)
      [[ $# -ge 2 ]] || { echo "ERROR: --shards needs a value" >&2; exit 2; }
      export QCONT_BENCH_SHARDS="$2"
      shift 2
      ;;
    --shards=*)
      export QCONT_BENCH_SHARDS="${1#*=}"
      shift
      ;;
    --trace)
      want_trace=1
      shift
      ;;
    --*)
      passthrough+=("$1")
      shift
      ;;
    *)
      filtered+=("$1")
      shift
      ;;
  esac
done
set -- ${filtered[@]+"${filtered[@]}"}

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="$repo_root/build"
out_dir="$repo_root"
suites="e1_ucq_containment e2_tractable_ucq e2_acyclic_eval e3_datalog_ucq_general \
e4_ack_engine e5_routing e6_hack e7_acrk_engine e8_multiedge e9_datalog_eval \
e10_c2rpq_eval e10_hot_program probe_kernel"

while getopts "b:o:s:" opt; do
  case "$opt" in
    b) build_dir="$OPTARG" ;;
    o) out_dir="$OPTARG" ;;
    s) suites="$OPTARG" ;;
    *) echo "usage: $0 [-b build_dir] [-o out_dir] [-s \"suites\"] [args...]" >&2; exit 2 ;;
  esac
done
shift $((OPTIND - 1))
set -- ${passthrough[@]+"${passthrough[@]}"} "$@"

mkdir -p "$out_dir"
# --trace resolves against the final OUT_DIR, so it must be exported after
# getopts has run.
if [[ "$want_trace" == 1 ]]; then
  export QCONT_BENCH_TRACE_DIR="$out_dir"
fi
status=0
for suite in $suites; do
  bin="$build_dir/bench/bench_$suite"
  if [[ ! -x "$bin" ]]; then
    echo "ERROR: benchmark binary not found: $bin (build the bench targets first)" >&2
    status=1
    continue
  fi
  out="$out_dir/BENCH_$suite.json"
  echo "== bench_$suite -> $out"
  if ! "$bin" --benchmark_format=json --benchmark_out="$out" \
       --benchmark_out_format=json "$@" > /dev/null; then
    echo "ERROR: bench_$suite failed" >&2
    status=1
  fi
done
exit $status

#ifndef QCONT_BENCH_WORKLOADS_H_
#define QCONT_BENCH_WORKLOADS_H_

// Scaling workload families used by the experiment benchmarks (EXPERIMENTS.md).

#include <chrono>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "cq/database.h"
#include "cq/query.h"
#include "datalog/program.h"
#include "obs/trace.h"

namespace qcont {
namespace bench {

/// Worker count for the "parallel" rows of the threaded benchmarks:
/// QCONT_BENCH_THREADS if set (see run_benchmarks.sh --threads), otherwise
/// the hardware concurrency, floored at 2 so the pool path is always
/// exercised even on single-core runners.
inline int BenchThreads() {
  if (const char* env = std::getenv("QCONT_BENCH_THREADS")) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? static_cast<int>(hw) : 2;
}

/// Thread axis of the multicore scaling rows (EXPERIMENTS.md): {1, 2, 4, 8}
/// pruned to counts this machine can actually schedule (oversubscribed rows
/// measure contention, not scaling), floored so the 2-thread pool row always
/// runs. A capture from a small machine simply has fewer rows; the
/// cross-file gates in CI use --allow-missing for exactly this reason.
inline std::vector<int> BenchThreadGrid() {
  const int cap =
      std::max(2, std::max(BenchThreads(),
                           static_cast<int>(std::thread::hardware_concurrency())));
  std::vector<int> grid;
  for (int t : {1, 2, 4, 8}) {
    if (t <= cap) grid.push_back(t);
  }
  return grid;
}

/// Shard axis of the scaling rows: QCONT_BENCH_SHARDS as a comma-separated
/// list (see run_benchmarks.sh --shards), otherwise {1, 4, 16} — unsharded
/// baseline, one shard per typical worker, and oversharded.
inline std::vector<int> BenchShardGrid() {
  if (const char* env = std::getenv("QCONT_BENCH_SHARDS")) {
    std::vector<int> grid;
    int v = 0;
    for (const char* p = env;; ++p) {
      if (*p >= '0' && *p <= '9') {
        v = v * 10 + (*p - '0');
      } else {
        if (v > 0) grid.push_back(v);
        v = 0;
        if (*p == '\0') break;
      }
    }
    if (!grid.empty()) return grid;
  }
  return {1, 4, 16};
}

/// Per-call wall time of `fn` in microseconds, averaged over `calls`
/// invocations. Used by the instrumented (untimed) passes to price the
/// analysis layer against the engine work.
template <typename Fn>
inline double WallMicrosPerCall(int calls, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < calls; ++i) fn();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
             .count() /
         calls;
}

/// Boolean chain CQ: ∃x0..xn E(x0,x1) ∧ ... ∧ E(x{n-1},xn). AC1, TW(1).
inline ConjunctiveQuery ChainCq(int n, const std::string& pred = "e",
                                int free_endpoints = 0) {
  std::vector<Atom> atoms;
  for (int i = 0; i < n; ++i) {
    atoms.emplace_back(pred, std::vector<Term>{
                                 Term::Variable("x" + std::to_string(i)),
                                 Term::Variable("x" + std::to_string(i + 1))});
  }
  std::vector<Term> head;
  if (free_endpoints >= 1) head.push_back(Term::Variable("x0"));
  if (free_endpoints >= 2) {
    head.push_back(Term::Variable("x" + std::to_string(n)));
  }
  return ConjunctiveQuery(std::move(head), std::move(atoms));
}

/// Boolean clique CQ on n variables: treewidth n-1, cyclic for n >= 3.
inline ConjunctiveQuery CliqueCq(int n, const std::string& pred = "e") {
  std::vector<Atom> atoms;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      atoms.emplace_back(pred, std::vector<Term>{
                                   Term::Variable("x" + std::to_string(i)),
                                   Term::Variable("x" + std::to_string(j))});
    }
  }
  return ConjunctiveQuery({}, std::move(atoms));
}

/// The paper's Section 3 acyclic-but-wide family: a clique covered by one
/// wide atom T(x1..xn); acyclic, in AC2, treewidth n-1's Gaifman clique.
inline ConjunctiveQuery CoveredCliqueCq(int n) {
  std::vector<Atom> atoms;
  std::vector<Term> wide;
  for (int i = 0; i < n; ++i) wide.push_back(Term::Variable("x" + std::to_string(i)));
  atoms.emplace_back("t" + std::to_string(n), wide);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      atoms.emplace_back("e", std::vector<Term>{
                                  Term::Variable("x" + std::to_string(i)),
                                  Term::Variable("x" + std::to_string(j))});
    }
  }
  return ConjunctiveQuery({}, std::move(atoms));
}

/// Transitive closure over `pred` edges.
inline DatalogProgram TcProgram(const std::string& pred = "e") {
  std::vector<Rule> rules;
  Term x = Term::Variable("x"), y = Term::Variable("y"), z = Term::Variable("z");
  rules.push_back(Rule{Atom("tc", {x, y}), {Atom(pred, {x, y})}});
  rules.push_back(
      Rule{Atom("tc", {x, y}), {Atom(pred, {x, z}), Atom("tc", {z, y})}});
  return DatalogProgram(std::move(rules), "tc");
}

/// A program whose expansions are e-chains of length ≡ 1 (mod m): chains
/// are extended m edges at a time. Larger m makes the UCQ-side analysis
/// harder while staying AC1.
inline DatalogProgram StrideProgram(int m) {
  std::vector<Rule> rules;
  Term x = Term::Variable("x"), y = Term::Variable("y");
  rules.push_back(Rule{Atom("p", {x, y}), {Atom("e", {x, y})}});
  std::vector<Atom> body;
  Term prev = x;
  for (int i = 0; i < m; ++i) {
    Term next = Term::Variable("z" + std::to_string(i));
    body.push_back(Atom("e", {prev, next}));
    prev = next;
  }
  body.push_back(Atom("p", {prev, y}));
  rules.push_back(Rule{Atom("p", {x, y}), std::move(body)});
  return DatalogProgram(std::move(rules), "p");
}

/// E10 "hot program" family (EXPERIMENTS.md): one Π whose kind space is
/// deliberately large relative to any single Θ-side fixpoint. The goal
/// predicate p has arity `arity`; the base rule grounds p in one wide EDB
/// atom c(x̄), the adjacent-merge rules make every interval-merge equality
/// pattern of the head reachable (2^(arity-1) kinds), and filler
/// self-recursions pad the program to `rules` rules so per-kind
/// instantiation work scales with n. The Π-only expansion therefore costs
/// Θ(2^arity · rules) rule instantiations, while each containment call's
/// type fixpoint over it stays shallow — the regime where program-keyed
/// artifact reuse pays.
inline DatalogProgram HotProgram(int arity, int rules) {
  std::vector<Term> xs;
  xs.reserve(arity);
  for (int i = 0; i < arity; ++i) {
    xs.push_back(Term::Variable("x" + std::to_string(i)));
  }
  std::vector<Rule> out;
  out.push_back(Rule{Atom("p", xs), {Atom("c", xs)}});
  for (int k = 0; k + 1 < arity; ++k) {
    std::vector<Term> child = xs;
    child[k + 1] = xs[k];  // child kind merges head positions k, k+1
    out.push_back(Rule{Atom("p", xs),
                       {Atom("e", {xs[k], xs[k + 1]}), Atom("p", child)}});
  }
  if (static_cast<int>(out.size()) < rules) {
    // Filler rules scale the Π-only instantiation work without feeding the
    // fixpoint: their q(u,v) child (fresh variables, so its kind keeps the
    // positions distinct) has no instances — q's only rule repeats a head
    // variable the pattern keeps apart, so Instantiate rejects it — and a
    // rule with a type-less child is never viable. The cold path still
    // pays full instantiation of every filler in all 2^(arity-1) kinds.
    Term z = Term::Variable("z"), u = Term::Variable("u"),
         v = Term::Variable("v");
    out.push_back(Rule{Atom("q", {z, z}), {Atom("c0", {z})}});
    for (int j = static_cast<int>(out.size()); j < rules; ++j) {
      out.push_back(Rule{Atom("p", xs),
                         {Atom("f" + std::to_string(j), xs),
                          Atom("q", {u, v})}});
    }
  }
  return DatalogProgram(std::move(out), "p");
}

/// Θ variants for the hot-program sweep: single-variable c-atoms
/// c(v,...,v) — one per 1 + `extras` — with the head repeating the first
/// atom's variable. A one-variable atom only matches the fully-merged
/// kind's base instance, so the subtree-type lattice stays flat (the
/// fresh-variable alternative makes types proliferate along merge-pullback
/// paths, and the fixpoint would then dominate the expansion). Sweeping
/// `extras` varies the query-side element enumeration against one fixed Π
/// without touching the Π-only kind space.
inline UnionQuery HotTheta(int arity, int extras) {
  std::vector<Atom> atoms;
  std::vector<Term> head(arity, Term::Variable("v0"));
  for (int j = 0; j <= extras; ++j) {
    std::vector<Term> vs(arity, Term::Variable("v" + std::to_string(j)));
    atoms.emplace_back("c", std::move(vs));
  }
  return UnionQuery({ConjunctiveQuery(std::move(head), std::move(atoms))});
}

/// UCQ of chain disjuncts with both endpoints free, lengths 1..m.
inline UnionQuery ChainUnion(int m) {
  std::vector<ConjunctiveQuery> disjuncts;
  for (int len = 1; len <= m; ++len) {
    disjuncts.push_back(ChainCq(len, "e", 2));
  }
  return UnionQuery(std::move(disjuncts));
}

/// Writes `session`'s trace to $QCONT_BENCH_TRACE_DIR/TRACE_<name>.json
/// when that directory is set (run_benchmarks.sh --trace), else does
/// nothing. Returns whether a file was written. Benchmarks call this after
/// their single instrumented pass, outside the timed loop.
inline bool MaybeWriteTrace(const TraceSession& session,
                            const std::string& name) {
  const char* dir = std::getenv("QCONT_BENCH_TRACE_DIR");
  if (dir == nullptr || *dir == '\0') return false;
  const std::string path = std::string(dir) + "/TRACE_" + name + ".json";
  return session.WriteFile(path).ok();
}

/// Random directed graph database over labels {e} with n nodes.
inline Database RandomEdgeDatabase(std::mt19937* rng, int nodes, int edges,
                                   const std::string& pred = "e") {
  Database db;
  for (int i = 0; i < edges; ++i) {
    db.AddFact(pred, {"n" + std::to_string((*rng)() % nodes),
                      "n" + std::to_string((*rng)() % nodes)});
  }
  return db;
}

/// Chain database n0 -> n1 -> ... -> n_len.
inline Database ChainDatabase(int len, const std::string& pred = "e") {
  Database db;
  for (int i = 0; i < len; ++i) {
    db.AddFact(pred, {"n" + std::to_string(i), "n" + std::to_string(i + 1)});
  }
  return db;
}

}  // namespace bench
}  // namespace qcont

#endif  // QCONT_BENCH_WORKLOADS_H_

// E9 — substrate benchmark: bottom-up Datalog evaluation. Semi-naive vs
// naive on transitive closure and same-generation; the expected shape is
// the classic one — semi-naive's rule firings grow with the number of new
// facts per round instead of the full relation.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <random>

#include "analysis/report.h"
#include "bench/workloads.h"
#include "datalog/eval.h"
#include "obs/obs.h"
#include "parser/parser.h"

namespace qcont {
namespace {

void BM_TcChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool semi = state.range(1) != 0;
  const int threads = static_cast<int>(state.range(2));
  DatalogProgram tc = bench::TcProgram();
  Database db = bench::ChainDatabase(n);
  EvalOptions options;
  options.strategy = semi ? EvalStrategy::kSemiNaive : EvalStrategy::kNaive;
  options.exec.threads = threads;
  DatalogEvalStats stats;
  std::size_t derived = 0;
  for (auto _ : state) {
    stats = DatalogEvalStats();
    derived = EvaluateGoal(tc, db, options, &stats)->size();
  }
  // Counters are identical across the threads rows (determinism contract).
  state.counters["derived"] = static_cast<double>(derived);
  state.counters["threads"] = threads;
  state.counters["rule_firings"] = static_cast<double>(stats.rule_firings);
  state.counters["iterations"] = static_cast<double>(stats.iterations);
  state.counters["index_probes"] = static_cast<double>(stats.hom.index_probes);
  state.counters["index_candidates"] =
      static_cast<double>(stats.hom.index_candidates);
  state.counters["scan_candidates"] =
      static_cast<double>(stats.hom.scan_candidates);
  // One instrumented pass outside the timed loop: per-phase wall time from
  // the span totals (eval = whole fixpoint, rounds = delta rounds, joins =
  // the parallel delta-join tasks), plus an optional trace file.
  {
    TraceSession trace;
    ObsContext obs{nullptr, &trace};
    EvalOptions traced = options;
    traced.obs = &obs;
    benchmark::DoNotOptimize(EvaluateGoal(tc, db, traced)->size());
    auto totals = trace.DurationTotalsUs();
    state.counters["t_eval_us"] = totals["datalog/eval"];
    state.counters["t_rounds_us"] = totals["datalog/round"];
    state.counters["t_joins_us"] = totals["datalog/delta_join"];
    // Analysis overhead: the routed path consults the AnalysisReport cache
    // per call; the cold consult runs the full program-structure pass
    // (stratification, relevance, fragments) and the decomposition engine,
    // the warm one re-hashes and looks up. `analysis_pct` prices the warm
    // consult against one fixpoint evaluation and is gated < 5% by
    // check_bench_regression.py --max-counter in CI.
    const UnionQuery goal_ucq({bench::ChainCq(1, tc.goal_predicate(), 2)});
    analysis::ClearGlobalAnalysisCache();
    analysis::RoutingOptions routing;
    state.counters["t_analysis_cold_us"] = bench::WallMicrosPerCall(1, [&] {
      benchmark::DoNotOptimize(analysis::AnalyzeForRouting(tc, goal_ucq, routing));
    });
    const double t_analysis = bench::WallMicrosPerCall(64, [&] {
      benchmark::DoNotOptimize(analysis::AnalyzeForRouting(tc, goal_ucq, routing));
    });
    state.counters["t_analysis_us"] = t_analysis;
    state.counters["analysis_pct"] =
        100.0 * t_analysis / std::max(totals["datalog/eval"], 1e-6);
    bench::MaybeWriteTrace(
        trace, "e9_tc_n" + std::to_string(n) + (semi ? "_semi" : "_naive") +
                   "_t" + std::to_string(threads));
  }
  // Probe-kernel traffic of one evaluation (DESIGN.md §16): the db.probe.*
  // counters are deterministic per (program, database, options), so one
  // untimed pass records them. Gated >0 on the semi-naive rows by
  // check_bench_regression.py --min-counter in CI.
  {
    const Database derived = *EvaluateProgram(tc, db, options);
    const DatabaseIndexStats idx = derived.index_stats();
    state.counters["probe_probes"] = static_cast<double>(idx.probes);
    state.counters["probe_tag_hits"] = static_cast<double>(idx.tag_hits);
    state.counters["probe_tag_skips"] = static_cast<double>(idx.tag_skips);
    state.counters["probe_filter_skips"] =
        static_cast<double>(idx.filter_skips);
    state.counters["probe_prefetch_batches"] =
        static_cast<double>(idx.prefetch_batches);
  }
  state.SetLabel(semi ? "semi_naive" : "naive");
}
// Every (size, strategy) at threads=1 (the shape-check rows); semi-naive —
// the only strategy with parallel delta rounds — also at BenchThreads().
void TcChainArgs(benchmark::internal::Benchmark* b) {
  for (int n : {8, 16, 32, 64}) {
    for (int semi : {0, 1}) {
      b->Args({n, semi, 1});
      if (semi != 0) b->Args({n, semi, bench::BenchThreads()});
    }
  }
}
BENCHMARK(BM_TcChain)->Apply(TcChainArgs);

// Multicore scaling rows (EXPERIMENTS.md §E9 scaling study): transitive
// closure over a wide random graph — n nodes, 4n edges — whose delta
// rounds carry thousands of rows, so both parallel stages of a round have
// real fan-out: the block-split delta joins (one task per
// delta_block_rows rows) and the shard-parallel round-barrier merge
// (Database::AddRowBatch, one claim task per shard). The (threads,
// shards) grid is pruned to thread counts this machine can schedule;
// check_bench_regression.py gates the threads=8/threads=1 ratio whenever
// a capture has both rows (--min-ratio ... --allow-missing) and bounds
// the serial merge fraction via the merge_serial_pct counter.
void BM_TcWide(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const int shards = static_cast<int>(state.range(2));
  std::mt19937 rng(11);
  DatalogProgram tc = bench::TcProgram();
  Database db = bench::RandomEdgeDatabase(&rng, n, 4 * n);
  EvalOptions options;
  options.exec.threads = threads;
  options.shards = shards;
  // Smaller blocks than the default so even mid-size deltas split into
  // several tasks per (rule, position) join.
  options.delta_block_rows = 512;
  DatalogEvalStats stats;
  std::size_t derived = 0;
  for (auto _ : state) {
    stats = DatalogEvalStats();
    derived = EvaluateGoal(tc, db, options, &stats)->size();
  }
  // Identical across every (threads, shards) cell — determinism contract.
  state.counters["derived"] = static_cast<double>(derived);
  state.counters["rule_firings"] = static_cast<double>(stats.rule_firings);
  state.counters["iterations"] = static_cast<double>(stats.iterations);
  state.counters["threads"] = threads;
  state.counters["shards"] = shards;
  // One instrumented pass outside the timed loop: wall time per phase from
  // the span totals. merge_serial_pct prices the round-barrier merge
  // against the whole fixpoint — the Amdahl serial fraction when
  // threads=1/shards=1, and the number EXPERIMENTS.md's speedup model
  // feeds on. It is a ratio of two same-machine wall times, so it is
  // comparable across capture machines and gated in CI.
  {
    TraceSession trace;
    ObsContext obs{nullptr, &trace};
    EvalOptions traced = options;
    traced.obs = &obs;
    benchmark::DoNotOptimize(EvaluateGoal(tc, db, traced)->size());
    auto totals = trace.DurationTotalsUs();
    state.counters["t_eval_us"] = totals["datalog/eval"];
    state.counters["t_joins_us"] = totals["datalog/delta_join"];
    state.counters["t_merge_us"] = totals["datalog/shard_merge"];
    state.counters["merge_serial_pct"] =
        100.0 * totals["datalog/shard_merge"] /
        std::max(totals["datalog/eval"], 1e-6);
    bench::MaybeWriteTrace(trace, "e9_tcwide_n" + std::to_string(n) + "_t" +
                                      std::to_string(threads) + "_p" +
                                      std::to_string(shards));
  }
  state.SetLabel("semi_naive");
}
void TcWideArgs(benchmark::internal::Benchmark* b) {
  for (const int threads : bench::BenchThreadGrid()) {
    for (const int shards : bench::BenchShardGrid()) {
      b->Args({256, threads, shards});
    }
  }
}
BENCHMARK(BM_TcWide)->Apply(TcWideArgs);

void BM_TcRandomGraph(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool semi = state.range(1) != 0;
  std::mt19937 rng(5);
  DatalogProgram tc = bench::TcProgram();
  Database db = bench::RandomEdgeDatabase(&rng, n, 2 * n);
  DatalogEvalStats stats;
  for (auto _ : state) {
    stats = DatalogEvalStats();
    benchmark::DoNotOptimize(
        EvaluateGoal(tc, db,
                     semi ? EvalStrategy::kSemiNaive : EvalStrategy::kNaive,
                     &stats)
            ->size());
  }
  state.counters["rule_firings"] = static_cast<double>(stats.rule_firings);
  state.SetLabel(semi ? "semi_naive" : "naive");
}
BENCHMARK(BM_TcRandomGraph)->ArgsProduct({{10, 20, 40}, {0, 1}});

void BM_SameGeneration(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const bool semi = state.range(1) != 0;
  auto sg = ParseProgram(
      "sg(x,y) :- flat(x,y). "
      "sg(x,y) :- up(x,u), sg(u,v), down(v,y). goal sg.");
  // A balanced tree: up-edges toward the root, down-edges back, flat at top.
  Database db;
  int id = 0;
  std::vector<int> level = {id};
  for (int d = 0; d < depth; ++d) {
    std::vector<int> next;
    for (int node : level) {
      for (int c = 0; c < 2; ++c) {
        ++id;
        db.AddFact("up", {"n" + std::to_string(id), "n" + std::to_string(node)});
        db.AddFact("down", {"n" + std::to_string(node), "n" + std::to_string(id)});
        next.push_back(id);
      }
    }
    level = next;
  }
  db.AddFact("flat", {"n0", "n0"});
  DatalogEvalStats stats;
  std::size_t derived = 0;
  for (auto _ : state) {
    stats = DatalogEvalStats();
    derived = EvaluateGoal(*sg, db,
                           semi ? EvalStrategy::kSemiNaive
                                : EvalStrategy::kNaive,
                           &stats)
                  ->size();
  }
  state.counters["derived"] = static_cast<double>(derived);
  state.counters["rule_firings"] = static_cast<double>(stats.rule_firings);
  state.SetLabel(semi ? "semi_naive" : "naive");
}
BENCHMARK(BM_SameGeneration)->ArgsProduct({{3, 4, 5}, {0, 1}});

}  // namespace
}  // namespace qcont

BENCHMARK_MAIN();

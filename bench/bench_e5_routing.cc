// E5 — Corollary 1: fixed-arity acyclic UCQs (∈ ACc) and TW(1) UCQs
// (⊆ AC2) are decided in EXPTIME by routing to the ACk engine. Measures
// the routed end-to-end cost (classification + engine) and confirms the
// route taken.

#include <benchmark/benchmark.h>

#include "bench/workloads.h"
#include "core/router.h"

namespace qcont {
namespace {

// Arity-2 schema, acyclic UCQ: Corollary 1(1) territory.
void BM_Routed_FixedArityAcyclic(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  DatalogProgram tc = bench::TcProgram();
  UnionQuery ucq = bench::ChainUnion(m);
  ContainmentRoute route = ContainmentRoute::kGeneralEngine;
  for (auto _ : state) {
    auto routed = DecideContainment(tc, ucq);
    route = routed->route;
    benchmark::DoNotOptimize(routed->answer.contained);
  }
  state.counters["routed_to_ack"] =
      route == ContainmentRoute::kAckEngine ? 1 : 0;
}
BENCHMARK(BM_Routed_FixedArityAcyclic)->DenseRange(1, 5, 1);

// TW(1) UCQ (a star query): Corollary 1(2) — routes to the ACk engine with
// k <= 2.
void BM_Routed_TreewidthOneStar(benchmark::State& state) {
  const int leaves = static_cast<int>(state.range(0));
  DatalogProgram tc = bench::TcProgram();
  std::vector<Atom> atoms;
  atoms.emplace_back("e", std::vector<Term>{Term::Variable("x"),
                                            Term::Variable("y")});
  for (int i = 0; i < leaves; ++i) {
    atoms.emplace_back("e", std::vector<Term>{
                                Term::Variable("x"),
                                Term::Variable("l" + std::to_string(i))});
  }
  UnionQuery ucq({ConjunctiveQuery({Term::Variable("x"), Term::Variable("y")},
                                   std::move(atoms))});
  int k = 0;
  for (auto _ : state) {
    auto routed = DecideContainment(tc, ucq);
    k = routed->ack_level;
    benchmark::DoNotOptimize(routed->answer.contained);
  }
  state.counters["ack_level"] = k;
}
BENCHMARK(BM_Routed_TreewidthOneStar)->DenseRange(1, 6, 1);

// A cyclic disjunct forces the general route — the cost of leaving the
// tractable island (Theorem 5's message).
void BM_Routed_CyclicFallback(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  DatalogProgram tc = bench::TcProgram();
  std::vector<Atom> atoms;
  for (int i = 0; i < k; ++i) {
    atoms.emplace_back("e", std::vector<Term>{
                                Term::Variable("c" + std::to_string(i)),
                                Term::Variable("c" + std::to_string((i + 1) % k))});
  }
  atoms.emplace_back("e", std::vector<Term>{Term::Variable("x"),
                                            Term::Variable("y")});
  UnionQuery ucq({ConjunctiveQuery({Term::Variable("x"), Term::Variable("y")},
                                   std::move(atoms))});
  ContainmentRoute route = ContainmentRoute::kAckEngine;
  for (auto _ : state) {
    auto routed = DecideContainment(tc, ucq);
    route = routed->route;
    benchmark::DoNotOptimize(routed->answer.contained);
  }
  state.counters["routed_to_general"] =
      route == ContainmentRoute::kGeneralEngine ? 1 : 0;
}
BENCHMARK(BM_Routed_CyclicFallback)->DenseRange(3, 6, 1);

}  // namespace
}  // namespace qcont

BENCHMARK_MAIN();

// E1 — Theorem 1: CONT(UCQ, UCQ) with the generic (NP) Chandra-Merlin /
// Sagiv-Yannakakis procedure. Series: runtime and backtracking effort as
// the query size grows; cliques on the right-hand side are the hard case.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <random>

#include "analysis/report.h"
#include "bench/workloads.h"
#include "cq/containment.h"
#include "obs/obs.h"

namespace qcont {
namespace {

// Chain ⊆ chain: the easy (acyclic target) regime of the NP test.
void BM_ChainInChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ConjunctiveQuery lhs = bench::ChainCq(2 * n);
  ConjunctiveQuery rhs = bench::ChainCq(n);
  HomSearchStats stats;
  bool contained = false;
  for (auto _ : state) {
    stats = HomSearchStats();
    contained = *CqContained(lhs, rhs, &stats);
  }
  state.counters["contained"] = contained ? 1 : 0;
  state.counters["atom_attempts"] = static_cast<double>(stats.atom_attempts);
}
BENCHMARK(BM_ChainInChain)->DenseRange(2, 14, 2);

// Clique ⊆ clique: the combinatorial regime (contained, but the search must
// find an automorphism-like mapping among n! candidates).
void BM_CliqueInClique(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ConjunctiveQuery lhs = bench::CliqueCq(n + 1);
  ConjunctiveQuery rhs = bench::CliqueCq(n);
  HomSearchStats stats;
  bool contained = false;
  for (auto _ : state) {
    stats = HomSearchStats();
    contained = *CqContained(lhs, rhs, &stats);
  }
  state.counters["contained"] = contained ? 1 : 0;
  state.counters["atom_attempts"] = static_cast<double>(stats.atom_attempts);
}
BENCHMARK(BM_CliqueInClique)->DenseRange(3, 7, 1);

// Headline E1 series: UCQ ⊆ UCQ over chain families at growing chain
// length. Every disjunct pair is decided by the Chandra-Merlin test on the
// canonical database of the left chain; the first two right-hand disjuncts
// are too long to fold into the left chains, so the Sagiv-Yannakakis loop
// walks them to refutation before the fitting disjunct succeeds. This is
// the join-substrate hot path: one candidate lookup per atom once the
// start variable is frozen.
void BM_UcqContainment(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  std::vector<ConjunctiveQuery> lhs_cqs, rhs_cqs;
  for (int i = 0; i < 2; ++i) {
    lhs_cqs.push_back(bench::ChainCq(2 * n + 2 * i, "e", 1));
  }
  rhs_cqs.push_back(bench::ChainCq(4 * n, "e", 1));  // refuted
  rhs_cqs.push_back(bench::ChainCq(3 * n, "e", 1));  // refuted
  rhs_cqs.push_back(bench::ChainCq(n, "e", 1));      // folds in
  UnionQuery lhs(lhs_cqs), rhs(rhs_cqs);
  HomSearchOptions options;
  options.exec.threads = threads;
  HomSearchStats stats;
  bool contained = false;
  for (auto _ : state) {
    stats = HomSearchStats();
    contained = *UcqContained(lhs, rhs, &stats, options);
  }
  // The determinism contract makes every counter identical across the
  // threads rows; only the time series varies.
  state.counters["contained"] = contained ? 1 : 0;
  state.counters["threads"] = threads;
  state.counters["atom_attempts"] = static_cast<double>(stats.atom_attempts);
  state.counters["index_probes"] = static_cast<double>(stats.index_probes);
  state.counters["index_candidates"] =
      static_cast<double>(stats.index_candidates);
  state.counters["scan_candidates"] =
      static_cast<double>(stats.scan_candidates);
  // One instrumented pass outside the timed loop: per-phase wall time from
  // the span totals (grid = whole disjunct-pair sweep, pair = the per-pair
  // Chandra-Merlin tests inside it), plus an optional trace file.
  {
    TraceSession trace;
    ObsContext obs{nullptr, &trace};
    HomSearchOptions traced = options;
    traced.obs = &obs;
    benchmark::DoNotOptimize(*UcqContained(lhs, rhs, nullptr, traced));
    auto totals = trace.DurationTotalsUs();
    state.counters["t_grid_us"] = totals["ucq/grid"];
    // Serial sweeps emit ucq/pair, the parallel grid emits ucq/grid_cell;
    // both are "one disjunct pair decided", so the column sums them.
    state.counters["t_pairs_us"] = totals["ucq/pair"] + totals["ucq/grid_cell"];
    // Analysis overhead: the routed path consults the AnalysisReport cache
    // on every containment call. `t_analysis_cold_us` is the one-time report
    // build (certificates, hashes); `t_analysis_us` is the per-call warm
    // consult — the cost that actually rides the hot path — and
    // `analysis_pct` prices it against one containment call's engine work
    // (gated < 5% by check_bench_regression.py --max-counter in CI).
    analysis::ClearGlobalAnalysisCache();
    analysis::RoutingOptions routing;
    state.counters["t_analysis_cold_us"] = bench::WallMicrosPerCall(1, [&] {
      benchmark::DoNotOptimize(analysis::AnalyzeForRouting(rhs, routing));
    });
    const double t_analysis = bench::WallMicrosPerCall(64, [&] {
      benchmark::DoNotOptimize(analysis::AnalyzeForRouting(rhs, routing));
    });
    const double t_engine = bench::WallMicrosPerCall(4, [&] {
      benchmark::DoNotOptimize(*UcqContained(lhs, rhs, nullptr, options));
    });
    state.counters["t_analysis_us"] = t_analysis;
    state.counters["analysis_pct"] =
        100.0 * t_analysis / std::max(t_engine, 1e-6);
    bench::MaybeWriteTrace(trace, "e1_ucq_n" + std::to_string(n) + "_t" +
                                      std::to_string(threads));
  }
}
// Every size at threads=1 (the shape-check rows) and at BenchThreads().
void UcqContainmentArgs(benchmark::internal::Benchmark* b) {
  for (int n = 8; n <= 64; n *= 2) {
    b->Args({n, 1});
    b->Args({n, bench::BenchThreads()});
  }
}
BENCHMARK(BM_UcqContainment)->Apply(UcqContainmentArgs);

// Random UCQ vs UCQ containment at growing disjunct counts.
void BM_RandomUnionContainment(benchmark::State& state) {
  const int disjuncts = static_cast<int>(state.range(0));
  std::mt19937 rng(12345);
  std::vector<ConjunctiveQuery> lhs_cqs, rhs_cqs;
  for (int i = 0; i < disjuncts; ++i) {
    lhs_cqs.push_back(bench::ChainCq(3 + (i % 3), "e", 1));
    rhs_cqs.push_back(bench::ChainCq(1 + (i % 4), "e", 1));
  }
  UnionQuery lhs(lhs_cqs), rhs(rhs_cqs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(*UcqContained(lhs, rhs));
  }
}
BENCHMARK(BM_RandomUnionContainment)->DenseRange(2, 10, 2);

}  // namespace
}  // namespace qcont

BENCHMARK_MAIN();

// E2 — Theorems 3/4 (via Proposition 1): CONT(UCQ, C) is PTIME for
// tractable C. Series: the same containment instances solved by (a) the
// generic NP backtracking test, (b) Yannakakis on the acyclic right-hand
// side, (c) the bounded-treewidth dynamic program. The paper's claim shows
// as polynomial growth for (b)/(c) where (a) degrades.

#include <benchmark/benchmark.h>

#include "bench/workloads.h"
#include "cq/containment.h"
#include "structure/acyclic_eval.h"
#include "structure/decomp_eval.h"

namespace qcont {
namespace {

// LHS: the section-3 covered clique (acyclic, wide); RHS: chain of length n.
// Containment holds: the chain folds into the clique edges.
ConjunctiveQuery Lhs(int n) { return bench::CoveredCliqueCq(n); }

void BM_GenericNp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ConjunctiveQuery lhs = Lhs(5);
  ConjunctiveQuery rhs = bench::ChainCq(n);
  HomSearchStats stats;
  for (auto _ : state) {
    stats = HomSearchStats();
    benchmark::DoNotOptimize(*CqContained(lhs, rhs, &stats));
  }
  state.counters["atom_attempts"] = static_cast<double>(stats.atom_attempts);
}
BENCHMARK(BM_GenericNp)->DenseRange(2, 12, 2);

void BM_YannakakisAcyclicRhs(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ConjunctiveQuery lhs = Lhs(5);
  ConjunctiveQuery rhs = bench::ChainCq(n);
  YannakakisStats stats;
  for (auto _ : state) {
    stats = YannakakisStats();
    benchmark::DoNotOptimize(*CqContainedAcyclicRhs(lhs, rhs, &stats));
  }
  state.counters["semijoins"] = static_cast<double>(stats.semijoins);
  state.counters["tuples_scanned"] = static_cast<double>(stats.tuples_scanned);
  state.counters["index_probes"] = static_cast<double>(stats.index_probes);
}
BENCHMARK(BM_YannakakisAcyclicRhs)->DenseRange(2, 12, 2);

void BM_BoundedWidthRhs(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ConjunctiveQuery lhs = Lhs(5);
  ConjunctiveQuery rhs = bench::ChainCq(n);
  DecompEvalStats stats;
  for (auto _ : state) {
    stats = DecompEvalStats();
    benchmark::DoNotOptimize(*CqContainedBoundedTwRhs(lhs, rhs, &stats));
  }
  state.counters["bag_assignments"] = static_cast<double>(stats.bag_assignments);
  state.counters["width"] = stats.width_used;
}
BENCHMARK(BM_BoundedWidthRhs)->DenseRange(2, 12, 2);

// TW(2) right-hand sides (chain with a chord closing each window): still
// PTIME via the DP, while staying outside AC.
void BM_BoundedWidthTw2Rhs(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<Atom> atoms;
  for (int i = 0; i < n; ++i) {
    atoms.emplace_back("e", std::vector<Term>{
                                Term::Variable("x" + std::to_string(i)),
                                Term::Variable("x" + std::to_string(i + 1))});
  }
  atoms.emplace_back("e", std::vector<Term>{Term::Variable("x0"),
                                            Term::Variable("x" + std::to_string(n))});
  ConjunctiveQuery rhs({}, std::move(atoms));  // cycle: TW(2)
  ConjunctiveQuery lhs({}, {Atom("e", {Term::Variable("s"), Term::Variable("s")})});
  DecompEvalStats stats;
  for (auto _ : state) {
    stats = DecompEvalStats();
    benchmark::DoNotOptimize(*CqContainedBoundedTwRhs(lhs, rhs, &stats));
  }
  state.counters["bag_assignments"] = static_cast<double>(stats.bag_assignments);
  state.counters["width"] = stats.width_used;
}
BENCHMARK(BM_BoundedWidthTw2Rhs)->DenseRange(3, 11, 2);

}  // namespace
}  // namespace qcont

BENCHMARK_MAIN();
